#include "alloc/allocator.hpp"

// Flat-memory rewrite of allocate_bisection (the hot path behind
// super_optimal; see docs/ALGORITHMS.md "Strategy seam"). Three ideas:
//
//  1. Flat marginal grids, packed bisection state. For TabulatedUtility
//     (the workhorse representation) the marginal is read straight off the
//     raw value grid: grid[k] - grid[k-1] is bit-for-bit what
//     TabulatedUtility::marginal(k) returns (the
//     UtilityFunction::tabulated_grid contract), with no shared_ptr ->
//     vtable -> vector chasing. Everything the inner loop needs per thread
//     (grid pointer, cap, first/last marginal, unit bracket) packs into one
//     64-byte record, so a probe costs one cache line of bookkeeping plus
//     the grid touches — even late in the bisection when the surviving
//     threads are scattered.
//
//  2. Bracket narrowing with active-set pinning. Every lambda the bisection
//     probes lies inside the current [lo, hi] price bracket, so each
//     thread's answer lies inside [units(hi), units(lo)] from the previous
//     probes. `units_at_or_above` is a pure function of (thread, lambda), so
//     searching the narrowed unit bracket returns the identical value at a
//     fraction of the cost. Once a thread's unit bracket collapses to a
//     point its answer is constant for every remaining lambda: the thread
//     is *pinned* — its contribution folds into a per-chunk constant and
//     later sweeps skip it entirely. Brackets collapse geometrically, so
//     the per-iteration cost decays from O(n) toward O(active).
//
//  3. Deterministic fan-out. Per-lambda probes are independent; chunks of
//     fixed width (boundaries depend only on n, never on the worker count)
//     run across support::parallel_for, and the unit count is the serial
//     chunk-order sum of per-chunk integer partials — order-independent, so
//     the result is bit-identical to the serial reference for every worker
//     count. The equivalence wall in tests/super_optimal_equivalence_test.cpp
//     holds exactly, not approximately.
//
// The lambda schedule replicates allocate_bisection's literally (same
// initial bracket, same midpoints, same stop rule, same plateau constant),
// so `exact` mode is a drop-in replacement. `price` mode (allocate_price)
// reuses everything but stops the dual bisection at a documented tolerance
// — see the contract in alloc/allocator.hpp.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <queue>
#include <stdexcept>
#include <vector>

#include "obs/registry.hpp"
#include "obs/session.hpp"
#include "support/thread_pool.hpp"
#include "utility/utility_function.hpp"

namespace aa::alloc {

namespace {

using util::Resource;
using util::UtilityPtr;

// Fan out only when the probe sweep is wide enough to amortize queueing, and
// chunk by a fixed width: boundaries must depend only on n, never on the
// worker count, or determinism across pool sizes dies.
constexpr std::size_t kMinParallelThreads = 2048;
constexpr std::size_t kChunkWidth = 1024;

/// Chunked reduce over [0, n) that degrades to a single inline call when the
/// pool is absent, single-threaded, or the range is small. Both paths
/// evaluate the same chunks' worth of work and combine exactly representable
/// values (integer sums / double max), so they agree bit-for-bit.
template <typename T, typename MapFn, typename CombineFn>
T reduce_over(support::ThreadPool* workers, std::size_t n, T init,
              const MapFn& map, const CombineFn& combine) {
  if (workers != nullptr && workers->worker_count() > 1 &&
      n >= kMinParallelThreads) {
    return support::parallel_chunked_reduce(*workers, std::size_t{0}, n,
                                            kChunkWidth, std::move(init), map,
                                            combine);
  }
  return combine(std::move(init), map(0, n));
}

double serial_total(std::span<const UtilityPtr> threads,
                    const std::vector<Resource>& amounts) {
  // Left-to-right on the caller's thread, exactly like the serial
  // reference's total_of — a chunked float sum would change the bits.
  double total = 0.0;
  for (std::size_t i = 0; i < threads.size(); ++i) {
    total += threads[i]->value(static_cast<double>(amounts[i]));
  }
  return total;
}

/// Per-thread bisection state, packed so one sweep step touches one cache
/// line of bookkeeping. 8 x 8 bytes = 64 bytes exactly.
struct Hot {
  const double* grid;  // nullptr => virtual marginal() path via func
  const util::UtilityFunction* func;
  Resource cap;
  double m1;           // marginal(1); 0 when cap < 1
  double mlast;        // marginal(cap); 0 when cap < 1
  Resource units_lo;   // units at price lo; valid iff lo_exact
  Resource units_hi;   // units at price hi; valid iff hi_exact
  Resource units_mid;  // most recent probe, owned by the pending side
};

[[nodiscard]] double marginal_of(const Hot& h, Resource k) {
  if (h.grid != nullptr) {
    const auto idx = static_cast<std::size_t>(k);
    return h.grid[idx] - h.grid[idx - 1];
  }
  return h.func->marginal(k);
}

/// Largest k in [lb, ub] with marginal(k) >= lambda. Requires the
/// unconstrained answer (largest such k in [0, cap], or 0) to lie in
/// [lb, ub]; under that bracket invariant the result equals the serial
/// units_at_or_above regardless of how tight the bracket is. The two
/// endpoint shortcuts resolve the common cases in O(1): lambda above the
/// first marginal means the serial early-out (answer 0, so lb == 0), and
/// lambda at or below the last marginal means every unit clears it
/// (answer cap, so ub == cap, by nonincreasing marginals).
[[nodiscard]] Resource probe(const Hot& h, double lambda, Resource lb,
                             Resource ub) {
  if (lb == ub) return lb;
  if (lambda > h.m1) return 0;
  if (lambda <= h.mlast) return h.cap;
  Resource lo = lb;
  Resource hi = ub;
  while (lo < hi) {
    const Resource mid = lo + (hi - lo + 1) / 2;  // mid >= 1: never f(0)
    if (marginal_of(h, mid) >= lambda) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

/// Which side of the price bracket the previous iteration's probes belong
/// to. Commits are deferred: instead of a bulk array pass per iteration,
/// each thread folds its own pending commit into the next sweep that visits
/// it (and a single tail pass after the loop handles threads still active).
enum class Side : std::uint8_t { kNone, kLo, kHi };

/// Per-chunk bisection state. `active` lists the threads whose unit bracket
/// is still open; once it collapses the thread's (now constant) contribution
/// moves into `pinned` and the thread drops off the list for good.
struct ChunkState {
  std::vector<std::size_t> active;
  Resource pinned = 0;
  Resource partial = 0;
};

struct CoreConfig {
  support::ThreadPool* workers = nullptr;
  bool price_mode = false;
  double price_tol = 1e-9;
};

AllocationResult run_bisection_soa(std::span<const UtilityPtr> threads,
                                   Resource pool, Resource per_thread_cap,
                                   const CoreConfig& config) {
  if (pool < 0) throw std::invalid_argument("allocate: negative pool");
  for (const auto& t : threads) {
    if (t == nullptr) throw std::invalid_argument("allocate: null utility");
  }
  const std::size_t n = threads.size();
  std::vector<Resource> amounts(n, 0);

  std::vector<Hot> hot(n);
  bool lo_exact = false;
  bool hi_exact = false;
  const auto bracket_lb = [&](const Hot& h) {
    return hi_exact ? h.units_hi : 0;
  };
  const auto bracket_ub = [&](const Hot& h) {
    return lo_exact ? h.units_lo : h.cap;
  };

  struct Setup {
    double max_marginal = 0.0;
    Resource total_cap = 0;
  };
  const Setup setup = reduce_over(
      config.workers, n, Setup{},
      [&](std::size_t from, std::size_t to) {
        Setup part;
        for (std::size_t i = from; i < to; ++i) {
          const util::UtilityFunction* f = threads[i].get();
          Hot& h = hot[i];
          h.func = f;
          h.grid = f->tabulated_grid();
          h.cap = std::min(f->capacity(), per_thread_cap);
          h.units_lo = 0;
          h.units_hi = 0;
          h.units_mid = 0;
          part.total_cap += h.cap;
          if (h.cap >= 1) {
            h.m1 = marginal_of(h, 1);
            h.mlast = marginal_of(h, h.cap);
            part.max_marginal = std::max(part.max_marginal, h.m1);
          } else {
            h.m1 = 0.0;
            h.mlast = 0.0;
          }
        }
        return part;
      },
      [](Setup acc, const Setup& part) {
        acc.max_marginal = std::max(acc.max_marginal, part.max_marginal);
        acc.total_cap += part.total_cap;
        return acc;
      });

  // Trivial cases, mirroring the serial reference: everyone saturates (still
  // trimming zero-marginal tails), or nothing is worth allocating.
  if (setup.total_cap <= pool) {
    (void)reduce_over(
        config.workers, n, Resource{0},
        [&](std::size_t from, std::size_t to) {
          for (std::size_t i = from; i < to; ++i) {
            amounts[i] = probe(hot[i], std::numeric_limits<double>::min(), 0,
                               hot[i].cap);
          }
          return Resource{0};
        },
        [](Resource acc, Resource part) { return acc + part; });
    const double total = serial_total(threads, amounts);
    return {std::move(amounts), total};
  }
  if (setup.max_marginal <= 0.0) {
    const double total = serial_total(threads, amounts);
    return {std::move(amounts), total};
  }

  // Chunked active sets. Threads with no capacity or a nonpositive first
  // marginal contribute 0 units at every probed price (all midpoints are
  // > 0, so the serial early-out fires for them) and their unit bracket is
  // already the point {0}; they never enter a sweep.
  const std::size_t num_chunks = (n + kChunkWidth - 1) / kChunkWidth;
  std::vector<ChunkState> chunks(num_chunks);
  for (std::size_t c = 0; c < num_chunks; ++c) {
    const std::size_t from = c * kChunkWidth;
    const std::size_t to = std::min(n, from + kChunkWidth);
    chunks[c].active.reserve(to - from);
    for (std::size_t i = from; i < to; ++i) {
      if (hot[i].cap >= 1 && hot[i].m1 > 0.0) chunks[c].active.push_back(i);
    }
  }

  // One sweep of one chunk at price `mid`. First folds the previous
  // iteration's deferred commit into this thread's bracket, then either pins
  // the thread (bracket collapsed: its units are constant for every
  // remaining price, including the final lo/hi — the stored bracket
  // endpoints stay exact) or probes the narrowed bracket. `partial` is the
  // chunk's exact integer unit count at `mid`.
  const auto sweep_chunk = [&](std::size_t c, double mid, Side commit) {
    ChunkState& chunk = chunks[c];
    std::vector<std::size_t>& act = chunk.active;
    const bool lo_valid = lo_exact;
    const bool hi_valid = hi_exact;
    Resource partial = chunk.pinned;
    std::size_t keep = 0;
    const std::size_t live = act.size();
    for (std::size_t r = 0; r < live; ++r) {
      const std::size_t i = act[r];
      // Pull the next survivors' records in while this probe's grid reads
      // are in flight; by mid-bisection the active list is sparse and each
      // record is its own cache line.
      if (r + 2 < live) __builtin_prefetch(&hot[act[r + 2]]);
      Hot& h = hot[i];
      if (commit == Side::kLo) {
        h.units_lo = h.units_mid;
      } else if (commit == Side::kHi) {
        h.units_hi = h.units_mid;
      }
      const Resource lb = hi_valid ? h.units_hi : 0;
      const Resource ub = lo_valid ? h.units_lo : h.cap;
      if (lb == ub) {
        chunk.pinned += lb;
        partial += lb;
        continue;
      }
      const Resource value = probe(h, mid, lb, ub);
      h.units_mid = value;
      partial += value;
      act[keep++] = i;
    }
    act.resize(keep);
    chunk.partial = partial;
  };

  const bool fan_out = config.workers != nullptr &&
                       config.workers->worker_count() > 1 &&
                       n >= kMinParallelThreads;

  // The serial reference's lambda schedule, replicated literally. In price
  // mode the stop rule loosens to the documented tolerance; everything else
  // (midpoints, commits, plateau constant) is shared.
  const double stop_width =
      config.price_mode
          ? std::max(config.price_tol, 0.0) * (1.0 + setup.max_marginal)
          : 0.0;
  double lo = 0.0;
  double hi = setup.max_marginal * (1.0 + 1e-9) + 1e-300;
  std::int64_t iterations = 0;
  Side pending = Side::kNone;
  for (int iter = 0; iter < 128; ++iter) {
    const bool converged = config.price_mode
                               ? hi - lo <= stop_width
                               : hi - lo <= 1e-15 * (1.0 + hi);
    if (converged) break;
    const double mid = 0.5 * (lo + hi);
    const Side commit = pending;
    if (fan_out) {
      support::parallel_for(
          *config.workers, 0, num_chunks,
          [&](std::size_t c) { sweep_chunk(c, mid, commit); });
    } else {
      for (std::size_t c = 0; c < num_chunks; ++c) sweep_chunk(c, mid, commit);
    }
    Resource count = 0;
    for (const ChunkState& chunk : chunks) count += chunk.partial;
    ++iterations;
    if (count > pool) {
      lo = mid;
      lo_exact = true;
      pending = Side::kLo;
    } else {
      hi = mid;
      hi_exact = true;
      pending = Side::kHi;
    }
  }
  // Threads still active carry one last uncommitted probe; fold it in so the
  // bracket records describe the final [lo, hi] exactly.
  if (pending != Side::kNone) {
    for (const ChunkState& chunk : chunks) {
      for (const std::size_t i : chunk.active) {
        if (pending == Side::kLo) {
          hot[i].units_lo = hot[i].units_mid;
        } else {
          hot[i].units_hi = hot[i].units_mid;
        }
      }
    }
  }
  obs::count(obs::metric::kSuperOptimalBisectIterations, iterations);

  Resource assigned = 0;
  if (hi_exact) {
    // units_hi is exactly units(hi) for the final hi — no probes needed.
    // Pinned threads' records froze when their bracket collapsed, which is
    // exact: their unit count is constant over the rest of the schedule.
    for (std::size_t i = 0; i < n; ++i) {
      amounts[i] = hot[i].units_hi;
      assigned += amounts[i];
    }
  } else {
    // The loop never committed hi (max_marginal at float-noise scale);
    // evaluate at hi directly.
    assigned = reduce_over(
        config.workers, n, Resource{0},
        [&](std::size_t from, std::size_t to) {
          Resource part = 0;
          for (std::size_t i = from; i < to; ++i) {
            amounts[i] =
                probe(hot[i], hi, bracket_lb(hot[i]), bracket_ub(hot[i]));
            part += amounts[i];
          }
          return part;
        },
        [](Resource acc, Resource part) { return acc + part; });
  }

  // Plateau distribution, identical to the serial reference: remaining
  // eligible units sit in the converged [lo, hi] sliver, so index order is
  // optimal up to that sliver. units(plateau) >= units(lo) and units_lo was
  // committed at (or below, for pinned threads, where units are constant)
  // the final lo, so units_lo brackets the probe from below.
  Resource residual = pool - assigned;
  if (residual > 0) {
    const double plateau = lo * (1.0 - 1e-12);
    std::vector<Resource> upto(n, 0);
    (void)reduce_over(
        config.workers, n, Resource{0},
        [&](std::size_t from, std::size_t to) {
          for (std::size_t i = from; i < to; ++i) {
            const Resource lb =
                lo_exact ? hot[i].units_lo : bracket_lb(hot[i]);
            upto[i] = probe(hot[i], plateau, lb, hot[i].cap);
          }
          return Resource{0};
        },
        [](Resource acc, Resource part) { return acc + part; });
    for (std::size_t i = 0; i < n && residual > 0; ++i) {
      const Resource take = std::min(residual, upto[i] - amounts[i]);
      amounts[i] += take;
      residual -= take;
    }
  }

  // Safety net for pathological floating-point geometry: finish greedily,
  // with the serial reference's exact tie-breaking.
  if (residual > 0) {
    struct Entry {
      double marginal;
      std::size_t thread;
      bool operator<(const Entry& other) const noexcept {
        if (marginal != other.marginal) return marginal < other.marginal;
        return thread > other.thread;
      }
    };
    std::priority_queue<Entry> heap;
    for (std::size_t i = 0; i < n; ++i) {
      if (amounts[i] < hot[i].cap) {
        const double m = marginal_of(hot[i], amounts[i] + 1);
        if (m > 0.0) heap.push({m, i});
      }
    }
    while (residual > 0 && !heap.empty()) {
      const Entry top = heap.top();
      heap.pop();
      const std::size_t i = top.thread;
      ++amounts[i];
      --residual;
      if (amounts[i] < hot[i].cap) {
        const double m = marginal_of(hot[i], amounts[i] + 1);
        if (m > 0.0) heap.push({m, i});
      }
    }
  }

  const double total = serial_total(threads, amounts);
  return {std::move(amounts), total};
}

}  // namespace

AllocationResult allocate_bisection_soa(std::span<const UtilityPtr> threads,
                                        Resource pool,
                                        Resource per_thread_cap,
                                        support::ThreadPool* workers) {
  CoreConfig config;
  config.workers = workers;
  return run_bisection_soa(threads, pool, per_thread_cap, config);
}

AllocationResult allocate_price(std::span<const UtilityPtr> threads,
                                Resource pool, Resource per_thread_cap,
                                double price_tol,
                                support::ThreadPool* workers) {
  CoreConfig config;
  config.workers = workers;
  config.price_mode = true;
  config.price_tol = price_tol;
  return run_bisection_soa(threads, pool, per_thread_cap, config);
}

}  // namespace aa::alloc
