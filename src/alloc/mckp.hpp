#pragma once

// Multiple-Choice Knapsack (MCKP) substrate.
//
// The paper frames AA as a combined multiple-choice multiple-knapsack
// problem (Section II): each thread is an item *class* — one (allocation,
// utility) item must be chosen per class — and each server is a knapsack.
// For a single server, MCKP solves the allocation problem even for
// NON-concave utilities (where the greedy/bisection allocators of
// allocator.hpp lose their exactness guarantee; cf. Lai & Fan [11]).
//
// Provided solvers:
//  * mckp_dp_exact   — textbook DP, O(sum_class_items * capacity). Weakly
//                      NP-hard in general; fine for the integer capacities
//                      used here.
//  * mckp_greedy     — LP-style greedy (Kellerer [17] / Gens & Levner [18]
//                      flavour): take the upper convex hull of each class,
//                      add hull increments in global density order, and
//                      return the better of the greedy fill and the best
//                      single item — a 1/2-approximation with
//                      O(N log N) running time.
//
// For concave utilities the class hulls are the classes themselves and the
// greedy is exact up to its last fractional step, which is why it agrees
// with allocator.hpp's exact algorithms in the tests.

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "utility/utility_function.hpp"

namespace aa::alloc {

struct MckpItem {
  util::Resource weight = 0;
  double value = 0.0;
};

/// One class: the candidate items of a single thread. Need not be sorted;
/// solvers normalize internally. An implicit (0, 0) item is always
/// available (threads may receive nothing).
using MckpClass = std::vector<MckpItem>;

struct MckpResult {
  std::vector<std::size_t> choice;  ///< Item index per class; kZeroChoice = the implicit (0,0).
  double total_value = 0.0;
  util::Resource total_weight = 0;
};

inline constexpr std::size_t kZeroChoice =
    std::numeric_limits<std::size_t>::max();

/// Exact DP over integer capacity. Throws on negative weights/capacity.
[[nodiscard]] MckpResult mckp_dp_exact(std::span<const MckpClass> classes,
                                       util::Resource capacity);

/// Convex-hull greedy 1/2-approximation (exact for concave classes up to
/// the final fractional item).
[[nodiscard]] MckpResult mckp_greedy(std::span<const MckpClass> classes,
                                     util::Resource capacity);

/// Builds a class from a utility function sampled at the given allocation
/// levels (each level one item). Levels outside [0, f.capacity()] are
/// clamped; duplicates are dropped.
[[nodiscard]] MckpClass class_from_utility(const util::UtilityFunction& f,
                                           std::span<const util::Resource> levels);

/// Uniformly spaced levels: step, 2*step, ..., up to f.capacity().
[[nodiscard]] MckpClass class_from_utility_uniform(
    const util::UtilityFunction& f, util::Resource step);

}  // namespace aa::alloc
