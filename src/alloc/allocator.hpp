#pragma once

// Single-pool concave resource allocation substrate (paper Section II
// related work; used as a black box by Section V's Definition V.1).
//
// Problem: given threads with concave utility functions and a pool of `pool`
// integer resource units, choose allocations a_i in [0, min(cap_i, C_i)]
// with sum a_i <= pool maximizing sum f_i(a_i).
//
// Two exact algorithms are provided:
//  * allocate_greedy   — marginal-gain heap greedy (Fox et al. [12] style),
//                        O((n + pool) log n). Exact because concavity makes
//                        the per-unit marginal sequence nonincreasing, so the
//                        greedy exchange argument applies.
//  * allocate_bisection— threshold search on the marginal value (Galil [16]
//                        style), O(n (log pool)^2 + n log n): binary-searches
//                        the Lagrange multiplier lambda, then distributes the
//                        residual units across the lambda-plateau. This is
//                        the algorithm the paper's complexity bounds cite.
//  * allocate_dp_exact — O(n pool^2) dynamic program; reference oracle for
//                        tests on small pools (works for arbitrary, even
//                        non-concave, tabulated utilities).
//
// The super-optimal allocation of Definition V.1 is the same routine with
// pool = m * C (see super_optimal.hpp).

#include <limits>
#include <span>
#include <vector>

#include "utility/utility_function.hpp"

namespace aa::support {
class ThreadPool;
}  // namespace aa::support

namespace aa::alloc {

struct AllocationResult {
  std::vector<util::Resource> amounts;  ///< One allocation per thread.
  double total_utility = 0.0;           ///< sum_i f_i(amounts[i]).
};

/// Per-thread allocation cap: each thread may receive at most
/// min(f.capacity(), per_thread_cap) units. Pass kNoCap for no extra bound.
inline constexpr util::Resource kNoCap =
    std::numeric_limits<util::Resource>::max();

/// Exact heap greedy. Requires concave utilities (nonincreasing marginals);
/// behaviour on non-concave inputs is unspecified (use allocate_dp_exact).
[[nodiscard]] AllocationResult allocate_greedy(
    std::span<const util::UtilityPtr> threads, util::Resource pool,
    util::Resource per_thread_cap = kNoCap);

/// Exact threshold bisection; same contract as allocate_greedy.
[[nodiscard]] AllocationResult allocate_bisection(
    std::span<const util::UtilityPtr> threads, util::Resource pool,
    util::Resource per_thread_cap = kNoCap);

/// Exact dynamic program over integer units (reference oracle).
[[nodiscard]] AllocationResult allocate_dp_exact(
    std::span<const util::UtilityPtr> threads, util::Resource pool,
    util::Resource per_thread_cap = kNoCap);

/// Exact threshold bisection restructured around structure-of-arrays
/// marginal grids (raw tabulated grids where available) with per-thread
/// unit-bracket narrowing, optionally fanning the per-lambda probes across
/// `workers` via support::parallel_chunked_reduce. Every reduced quantity is
/// an integer count or an exact max, and the chunk decomposition depends only
/// on n, so the result is bit-identical to allocate_bisection for every
/// input and every worker count (nullptr runs all probes on the caller).
[[nodiscard]] AllocationResult allocate_bisection_soa(
    std::span<const util::UtilityPtr> threads, util::Resource pool,
    util::Resource per_thread_cap = kNoCap,
    support::ThreadPool* workers = nullptr);

/// Single-price variant (price discovery in the style of Agrawal/Boyd et
/// al.): the same dual bisection, but it stops once the price bracket is
/// narrower than `price_tol * (1 + max_marginal)` instead of running to
/// machine precision. The allocation is always feasible for the pooled
/// problem, so its utility never exceeds the exact optimum F_hat, and the
/// shortfall is bounded by the unresolved plateau sliver:
///
///   utility >= F_hat - price_tol * (1 + max_marginal) * pool
///
/// (up to float rounding in the final summation). NOT a valid upper bound
/// on F_hat, so branch-and-bound pruning must keep using the exact paths.
[[nodiscard]] AllocationResult allocate_price(
    std::span<const util::UtilityPtr> threads, util::Resource pool,
    util::Resource per_thread_cap = kNoCap, double price_tol = 1e-9,
    support::ThreadPool* workers = nullptr);

}  // namespace aa::alloc
