#include "alloc/super_optimal.hpp"

#include <stdexcept>

#include "obs/registry.hpp"
#include "obs/session.hpp"

namespace aa::alloc {

namespace {

util::Resource pooled(std::size_t num_servers, util::Resource capacity) {
  if (capacity < 0) {
    throw std::invalid_argument("super_optimal: negative capacity");
  }
  return static_cast<util::Resource>(num_servers) * capacity;
}

}  // namespace

SuperOptimalResult super_optimal(std::span<const util::UtilityPtr> threads,
                                 std::size_t num_servers,
                                 util::Resource capacity) {
  const obs::ScopedPhase obs_phase(obs::metric::kPhaseSuperOptimal);
  obs::count(obs::metric::kSuperOptimalCalls);
  obs::count(obs::metric::kSuperOptimalThreads,
             static_cast<std::int64_t>(threads.size()));
  AllocationResult result =
      allocate_bisection(threads, pooled(num_servers, capacity), capacity);
  return {std::move(result.amounts), result.total_utility};
}

SuperOptimalResult super_optimal_greedy(
    std::span<const util::UtilityPtr> threads, std::size_t num_servers,
    util::Resource capacity) {
  const obs::ScopedPhase obs_phase(obs::metric::kPhaseSuperOptimal);
  obs::count(obs::metric::kSuperOptimalCalls);
  obs::count(obs::metric::kSuperOptimalThreads,
             static_cast<std::int64_t>(threads.size()));
  AllocationResult result =
      allocate_greedy(threads, pooled(num_servers, capacity), capacity);
  return {std::move(result.amounts), result.total_utility};
}

}  // namespace aa::alloc
