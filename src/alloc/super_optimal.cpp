#include "alloc/super_optimal.hpp"

#include <cstdint>
#include <stdexcept>
#include <string>

#include "obs/registry.hpp"
#include "obs/session.hpp"
#include "support/thread_pool.hpp"

namespace aa::alloc {

namespace {

util::Resource pooled(std::size_t num_servers, util::Resource capacity) {
  if (capacity < 0) {
    throw std::invalid_argument("super_optimal: negative capacity");
  }
  return static_cast<util::Resource>(num_servers) * capacity;
}

void count_call(std::span<const util::UtilityPtr> threads) {
  obs::count(obs::metric::kSuperOptimalCalls);
  obs::count(obs::metric::kSuperOptimalThreads,
             static_cast<std::int64_t>(threads.size()));
}

// Startup-configured, then read-only while solver threads run (see the
// header contract); a plain global keeps the hot path branch-free.
SuperOptimalOptions g_default_options;

}  // namespace

SuperOptimalResult super_optimal(std::span<const util::UtilityPtr> threads,
                                 std::size_t num_servers,
                                 util::Resource capacity) {
  const obs::ScopedPhase obs_phase(obs::metric::kPhaseSuperOptimal);
  count_call(threads);
  AllocationResult result =
      allocate_bisection(threads, pooled(num_servers, capacity), capacity);
  return {std::move(result.amounts), result.total_utility};
}

SuperOptimalResult super_optimal_greedy(
    std::span<const util::UtilityPtr> threads, std::size_t num_servers,
    util::Resource capacity) {
  const obs::ScopedPhase obs_phase(obs::metric::kPhaseSuperOptimal);
  count_call(threads);
  AllocationResult result =
      allocate_greedy(threads, pooled(num_servers, capacity), capacity);
  return {std::move(result.amounts), result.total_utility};
}

SuperOptimalResult super_optimal_parallel(
    std::span<const util::UtilityPtr> threads, std::size_t num_servers,
    util::Resource capacity, support::ThreadPool* workers) {
  const obs::ScopedPhase obs_phase(obs::metric::kPhaseSuperOptimalParallel);
  count_call(threads);
  obs::count(obs::metric::kSuperOptimalParallelCalls);
  if (workers == nullptr) workers = &support::global_pool();
  AllocationResult result = allocate_bisection_soa(
      threads, pooled(num_servers, capacity), capacity, workers);
  return {std::move(result.amounts), result.total_utility};
}

SuperOptimalResult super_optimal_price(
    std::span<const util::UtilityPtr> threads, std::size_t num_servers,
    util::Resource capacity, double price_tol, support::ThreadPool* workers) {
  const obs::ScopedPhase obs_phase(obs::metric::kPhaseSuperOptimalPrice);
  count_call(threads);
  obs::count(obs::metric::kSuperOptimalPriceCalls);
  if (workers == nullptr) workers = &support::global_pool();
  AllocationResult result = allocate_price(
      threads, pooled(num_servers, capacity), capacity, price_tol, workers);
  return {std::move(result.amounts), result.total_utility};
}

SuperOptimalResult super_optimal_with(
    std::span<const util::UtilityPtr> threads, std::size_t num_servers,
    util::Resource capacity, const SuperOptimalOptions& options) {
  switch (options.strategy) {
    case SuperOptimalStrategy::kParallel:
      return super_optimal_parallel(threads, num_servers, capacity,
                                    options.workers);
    case SuperOptimalStrategy::kPrice:
      return super_optimal_price(threads, num_servers, capacity,
                                 options.price_tolerance, options.workers);
    case SuperOptimalStrategy::kSerial:
      break;
  }
  return super_optimal(threads, num_servers, capacity);
}

SuperOptimalResult super_optimal_routed(
    std::span<const util::UtilityPtr> threads, std::size_t num_servers,
    util::Resource capacity) {
  return super_optimal_with(threads, num_servers, capacity, g_default_options);
}

AllocationResult allocate_pooled_routed(
    std::span<const util::UtilityPtr> threads, util::Resource pool,
    util::Resource per_thread_cap) {
  switch (g_default_options.strategy) {
    case SuperOptimalStrategy::kParallel:
      return allocate_bisection_soa(threads, pool, per_thread_cap,
                                    &support::global_pool());
    case SuperOptimalStrategy::kPrice:
      return allocate_price(threads, pool, per_thread_cap,
                            g_default_options.price_tolerance,
                            &support::global_pool());
    case SuperOptimalStrategy::kSerial:
      break;
  }
  return allocate_bisection(threads, pool, per_thread_cap);
}

void set_default_super_optimal_options(const SuperOptimalOptions& options) {
  g_default_options = options;
  g_default_options.workers = nullptr;  // Routed paths use the global pool.
}

SuperOptimalOptions default_super_optimal_options() {
  return g_default_options;
}

SuperOptimalStrategy parse_super_optimal_strategy(std::string_view name) {
  if (name == "serial") return SuperOptimalStrategy::kSerial;
  if (name == "parallel") return SuperOptimalStrategy::kParallel;
  if (name == "price") return SuperOptimalStrategy::kPrice;
  throw std::invalid_argument("unknown super-optimal strategy '" +
                              std::string(name) +
                              "' (expected serial|parallel|price)");
}

std::string_view super_optimal_strategy_name(SuperOptimalStrategy strategy) {
  switch (strategy) {
    case SuperOptimalStrategy::kParallel:
      return "parallel";
    case SuperOptimalStrategy::kPrice:
      return "price";
    case SuperOptimalStrategy::kSerial:
      break;
  }
  return "serial";
}

}  // namespace aa::alloc
