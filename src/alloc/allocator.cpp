#include "alloc/allocator.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

namespace aa::alloc {

namespace {

using util::Resource;
using util::UtilityPtr;

void check_inputs(std::span<const UtilityPtr> threads, Resource pool) {
  if (pool < 0) throw std::invalid_argument("allocate: negative pool");
  for (const auto& t : threads) {
    if (t == nullptr) throw std::invalid_argument("allocate: null utility");
  }
}

Resource effective_cap(const UtilityPtr& thread, Resource per_thread_cap) {
  return std::min(thread->capacity(), per_thread_cap);
}

double total_of(std::span<const UtilityPtr> threads,
                const std::vector<Resource>& amounts) {
  double total = 0.0;
  for (std::size_t i = 0; i < threads.size(); ++i) {
    total += threads[i]->value(static_cast<double>(amounts[i]));
  }
  return total;
}

}  // namespace

AllocationResult allocate_greedy(std::span<const UtilityPtr> threads,
                                 Resource pool, Resource per_thread_cap) {
  check_inputs(threads, pool);
  const std::size_t n = threads.size();
  std::vector<Resource> amounts(n, 0);

  // Max-heap of the next unit's marginal per thread; ties broken by thread
  // index so results are deterministic.
  struct Entry {
    double marginal;
    std::size_t thread;
    bool operator<(const Entry& other) const noexcept {
      if (marginal != other.marginal) return marginal < other.marginal;
      return thread > other.thread;
    }
  };
  std::priority_queue<Entry> heap;
  for (std::size_t i = 0; i < n; ++i) {
    if (effective_cap(threads[i], per_thread_cap) >= 1) {
      const double m = threads[i]->marginal(1);
      if (m > 0.0) heap.push({m, i});
    }
  }

  Resource remaining = pool;
  while (remaining > 0 && !heap.empty()) {
    const Entry top = heap.top();
    heap.pop();
    const std::size_t i = top.thread;
    ++amounts[i];
    --remaining;
    if (amounts[i] < effective_cap(threads[i], per_thread_cap)) {
      const double m = threads[i]->marginal(amounts[i] + 1);
      if (m > 0.0) heap.push({m, i});
    }
  }
  const double total = total_of(threads, amounts);
  return {std::move(amounts), total};
}

namespace {

/// Largest k in [0, cap] with marginal(k) >= lambda (marginals nonincreasing).
Resource units_at_or_above(const util::UtilityFunction& f, Resource cap,
                           double lambda) {
  if (cap <= 0 || f.marginal(1) < lambda) return 0;
  Resource lo = 1;
  Resource hi = cap;
  while (lo < hi) {
    const Resource mid = lo + (hi - lo + 1) / 2;
    if (f.marginal(mid) >= lambda) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

}  // namespace

AllocationResult allocate_bisection(std::span<const UtilityPtr> threads,
                                    Resource pool, Resource per_thread_cap) {
  check_inputs(threads, pool);
  const std::size_t n = threads.size();
  std::vector<Resource> amounts(n, 0);
  std::vector<Resource> caps(n);
  double max_marginal = 0.0;
  Resource total_cap = 0;
  for (std::size_t i = 0; i < n; ++i) {
    caps[i] = effective_cap(threads[i], per_thread_cap);
    total_cap += caps[i];
    if (caps[i] >= 1) max_marginal = std::max(max_marginal, threads[i]->marginal(1));
  }

  // Everyone saturates, or nothing worth allocating: trivial cases.
  if (total_cap <= pool) {
    for (std::size_t i = 0; i < n; ++i) {
      // Still trim zero-marginal tails so the allocation is parsimonious.
      amounts[i] = units_at_or_above(*threads[i], caps[i],
                                     std::numeric_limits<double>::min());
    }
    const double total = total_of(threads, amounts);
  return {std::move(amounts), total};
  }
  if (max_marginal <= 0.0) {
    const double total = total_of(threads, amounts);
  return {std::move(amounts), total};
  }

  auto count_at = [&](double lambda) {
    Resource count = 0;
    for (std::size_t i = 0; i < n; ++i) {
      count += units_at_or_above(*threads[i], caps[i], lambda);
    }
    return count;
  };

  // Invariant: count(hi) <= pool < count(lo). lo = 0 qualifies because
  // total_cap > pool and every unit has marginal >= 0... except that strictly
  // we count units with marginal >= lambda, and count(0) == total_cap > pool.
  double lo = 0.0;
  double hi = max_marginal * (1.0 + 1e-9) + 1e-300;
  for (int iter = 0; iter < 128 && hi - lo > 1e-15 * (1.0 + hi); ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (count_at(mid) > pool) {
      lo = mid;
    } else {
      hi = mid;
    }
  }

  Resource assigned = 0;
  for (std::size_t i = 0; i < n; ++i) {
    amounts[i] = units_at_or_above(*threads[i], caps[i], hi);
    assigned += amounts[i];
  }

  // Distribute the residual across the lambda-plateau: all remaining
  // eligible units have marginal within the (converged) [lo, hi] sliver, so
  // any distribution among them is optimal up to that sliver.
  Resource residual = pool - assigned;
  const double plateau = lo * (1.0 - 1e-12);
  for (std::size_t i = 0; i < n && residual > 0; ++i) {
    const Resource upto = units_at_or_above(*threads[i], caps[i], plateau);
    const Resource take = std::min(residual, upto - amounts[i]);
    amounts[i] += take;
    residual -= take;
  }

  // Safety net for pathological floating-point geometry: finish greedily.
  if (residual > 0) {
    struct Entry {
      double marginal;
      std::size_t thread;
      bool operator<(const Entry& other) const noexcept {
        if (marginal != other.marginal) return marginal < other.marginal;
        return thread > other.thread;
      }
    };
    std::priority_queue<Entry> heap;
    for (std::size_t i = 0; i < n; ++i) {
      if (amounts[i] < caps[i]) {
        const double m = threads[i]->marginal(amounts[i] + 1);
        if (m > 0.0) heap.push({m, i});
      }
    }
    while (residual > 0 && !heap.empty()) {
      const Entry top = heap.top();
      heap.pop();
      const std::size_t i = top.thread;
      ++amounts[i];
      --residual;
      if (amounts[i] < caps[i]) {
        const double m = threads[i]->marginal(amounts[i] + 1);
        if (m > 0.0) heap.push({m, i});
      }
    }
  }

  const double total = total_of(threads, amounts);
  return {std::move(amounts), total};
}

AllocationResult allocate_dp_exact(std::span<const UtilityPtr> threads,
                                   Resource pool, Resource per_thread_cap) {
  check_inputs(threads, pool);
  const std::size_t n = threads.size();
  const auto pool_sz = static_cast<std::size_t>(pool);
  // dp[j]: best utility using exactly <= j units over the prefix of threads.
  std::vector<double> dp(pool_sz + 1, 0.0);
  // choice[i][j]: units given to thread i in the optimum for budget j.
  std::vector<std::vector<Resource>> choice(
      n, std::vector<Resource>(pool_sz + 1, 0));
  for (std::size_t i = 0; i < n; ++i) {
    const Resource cap = effective_cap(threads[i], per_thread_cap);
    std::vector<double> next(pool_sz + 1,
                             -std::numeric_limits<double>::infinity());
    for (std::size_t j = 0; j <= pool_sz; ++j) {
      const Resource max_a = std::min<Resource>(cap, static_cast<Resource>(j));
      for (Resource a = 0; a <= max_a; ++a) {
        const double candidate =
            dp[j - static_cast<std::size_t>(a)] +
            threads[i]->value(static_cast<double>(a));
        if (candidate > next[j]) {
          next[j] = candidate;
          choice[i][j] = a;
        }
      }
    }
    dp = std::move(next);
  }
  std::vector<Resource> amounts(n, 0);
  std::size_t budget = pool_sz;
  for (std::size_t i = n; i-- > 0;) {
    amounts[i] = choice[i][budget];
    budget -= static_cast<std::size_t>(amounts[i]);
  }
  const double total = total_of(threads, amounts);
  return {std::move(amounts), total};
}

}  // namespace aa::alloc
