#pragma once

// JSON (de)serialization for AA instances and assignments, so instances can
// be generated, archived, and solved by separate processes (see the aa_gen
// and aa_solve tools).
//
// Instance document:
//   {
//     "num_servers": 8,
//     "capacity": 1000,
//     "threads": [
//       {"type": "power", "scale": 1.0, "beta": 0.5},
//       {"type": "capped_linear", "slope": 2.0, "cap": 40.0},
//       {"type": "log", "scale": 3.0, "rate": 0.1},
//       {"type": "piecewise", "xs": [0, 10, 20], "ys": [0, 5, 7]},
//       {"type": "tabulated", "values": [0, 1.5, 2.5, 3.0]}
//     ]
//   }
//
// Thread capacities are implied by the instance capacity for the analytic
// families; "tabulated"/"piecewise" carry their own domain, which must
// cover the instance capacity (Instance::validate enforces this on load).
//
// Assignment document:
//   {"server": [0, 1, 0], "alloc": [40, 100, 60], "utility": 123.4}

#include <string>

#include "aa/heterogeneous.hpp"
#include "aa/problem.hpp"
#include "support/json.hpp"

namespace aa::io {

/// Serializes one utility function (analytic families keep their
/// parameters; everything else is tabulated on the integer grid). This is
/// the "threads" element format above; the allocation service reuses it for
/// single-thread add/update requests.
[[nodiscard]] support::JsonValue utility_to_json(
    const util::UtilityFunction& utility);

/// Parses one utility node against the given server capacity (analytic
/// families take their domain from it; tabulated/piecewise carry their
/// own). Throws std::runtime_error on unknown types or bad parameters.
[[nodiscard]] util::UtilityPtr utility_from_json(
    const support::JsonValue& node, util::Resource capacity);

/// Serializes an instance (analytic utilities keep their parameters;
/// everything else is tabulated on the integer grid).
[[nodiscard]] support::JsonValue instance_to_json(
    const core::Instance& instance);

/// Parses and validates an instance document. Throws std::runtime_error /
/// support::JsonError with a descriptive message on malformed input.
[[nodiscard]] core::Instance instance_from_json(
    const support::JsonValue& document);

[[nodiscard]] support::JsonValue assignment_to_json(
    const core::Instance& instance, const core::Assignment& assignment);

[[nodiscard]] core::Assignment assignment_from_json(
    const support::JsonValue& document);

/// Heterogeneous instances use the same document with a "capacities"
/// array instead of "num_servers"/"capacity" (thread domains must cover
/// the largest server):
///   {"capacities": [512, 512, 128], "threads": [...]}
[[nodiscard]] support::JsonValue hetero_instance_to_json(
    const core::HeteroInstance& instance);
[[nodiscard]] core::HeteroInstance hetero_instance_from_json(
    const support::JsonValue& document);

/// True when the document carries per-server capacities.
[[nodiscard]] bool is_hetero_document(const support::JsonValue& document);

/// File helpers (throw std::runtime_error on I/O failure).
[[nodiscard]] core::Instance load_instance(const std::string& path);
void save_instance(const core::Instance& instance, const std::string& path);
[[nodiscard]] std::string read_file(const std::string& path);
void write_file(const std::string& path, const std::string& contents);

}  // namespace aa::io
