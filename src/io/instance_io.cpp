#include "io/instance_io.hpp"

#include <fstream>
#include <memory>
#include <sstream>

namespace aa::io {

using support::JsonValue;

JsonValue utility_to_json(const util::UtilityFunction& f) {
  JsonValue node;
  if (const auto* power = dynamic_cast<const util::PowerUtility*>(&f)) {
    node.set("type", "power");
    node.set("scale", power->scale());
    node.set("beta", power->beta());
    return node;
  }
  if (const auto* capped =
          dynamic_cast<const util::CappedLinearUtility*>(&f)) {
    node.set("type", "capped_linear");
    node.set("slope", capped->slope());
    node.set("cap", capped->cap());
    return node;
  }
  if (const auto* log = dynamic_cast<const util::LogUtility*>(&f)) {
    node.set("type", "log");
    node.set("scale", log->scale());
    node.set("rate", log->rate());
    return node;
  }
  // Everything else (tabulated, piecewise, wrappers) round-trips through a
  // full-resolution tabulation of its own domain.
  JsonValue::Array values;
  for (util::Resource k = 0; k <= f.capacity(); ++k) {
    values.emplace_back(f.value(static_cast<double>(k)));
  }
  node.set("type", "tabulated");
  node.set("values", JsonValue(std::move(values)));
  return node;
}

util::UtilityPtr utility_from_json(const JsonValue& node,
                                   util::Resource capacity) {
  const std::string& type = node.at("type").as_string();
  if (type == "power") {
    return std::make_shared<util::PowerUtility>(
        node.at("scale").as_number(), node.at("beta").as_number(), capacity);
  }
  if (type == "capped_linear") {
    return std::make_shared<util::CappedLinearUtility>(
        node.at("slope").as_number(), node.at("cap").as_number(), capacity);
  }
  if (type == "log") {
    return std::make_shared<util::LogUtility>(
        node.at("scale").as_number(), node.at("rate").as_number(), capacity);
  }
  if (type == "piecewise") {
    std::vector<double> xs;
    std::vector<double> ys;
    for (const JsonValue& x : node.at("xs").as_array()) {
      xs.push_back(x.as_number());
    }
    for (const JsonValue& y : node.at("ys").as_array()) {
      ys.push_back(y.as_number());
    }
    return std::make_shared<util::PiecewiseLinearUtility>(std::move(xs),
                                                          std::move(ys));
  }
  if (type == "tabulated") {
    std::vector<double> values;
    for (const JsonValue& v : node.at("values").as_array()) {
      values.push_back(v.as_number());
    }
    return std::make_shared<util::TabulatedUtility>(std::move(values));
  }
  throw std::runtime_error("instance: unknown utility type '" + type + "'");
}

JsonValue instance_to_json(const core::Instance& instance) {
  JsonValue document;
  document.set("num_servers", instance.num_servers);
  document.set("capacity", instance.capacity);
  JsonValue::Array threads;
  threads.reserve(instance.num_threads());
  for (const auto& thread : instance.threads) {
    threads.push_back(utility_to_json(*thread));
  }
  document.set("threads", JsonValue(std::move(threads)));
  return document;
}

core::Instance instance_from_json(const JsonValue& document) {
  core::Instance instance;
  const std::int64_t servers = document.at("num_servers").as_int();
  if (servers <= 0) {
    throw std::runtime_error("instance: num_servers must be positive");
  }
  instance.num_servers = static_cast<std::size_t>(servers);
  instance.capacity = document.at("capacity").as_int();
  for (const JsonValue& node : document.at("threads").as_array()) {
    instance.threads.push_back(utility_from_json(node, instance.capacity));
  }
  instance.validate();
  return instance;
}

JsonValue hetero_instance_to_json(const core::HeteroInstance& instance) {
  JsonValue document;
  JsonValue::Array capacities;
  for (const util::Resource c : instance.capacities) capacities.emplace_back(c);
  document.set("capacities", JsonValue(std::move(capacities)));
  JsonValue::Array threads;
  threads.reserve(instance.num_threads());
  for (const auto& thread : instance.threads) {
    threads.push_back(utility_to_json(*thread));
  }
  document.set("threads", JsonValue(std::move(threads)));
  return document;
}

core::HeteroInstance hetero_instance_from_json(const JsonValue& document) {
  core::HeteroInstance instance;
  for (const JsonValue& c : document.at("capacities").as_array()) {
    instance.capacities.push_back(c.as_int());
  }
  const util::Resource max_cap = instance.max_capacity();
  for (const JsonValue& node : document.at("threads").as_array()) {
    instance.threads.push_back(utility_from_json(node, max_cap));
  }
  instance.validate();
  return instance;
}

bool is_hetero_document(const JsonValue& document) {
  return document.is_object() && document.find("capacities") != nullptr;
}

JsonValue assignment_to_json(const core::Instance& instance,
                             const core::Assignment& assignment) {
  JsonValue document;
  JsonValue::Array server;
  JsonValue::Array alloc;
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    server.emplace_back(assignment.server[i]);
    alloc.emplace_back(assignment.alloc[i]);
  }
  document.set("server", JsonValue(std::move(server)));
  document.set("alloc", JsonValue(std::move(alloc)));
  document.set("utility", core::total_utility(instance, assignment));
  return document;
}

core::Assignment assignment_from_json(const JsonValue& document) {
  core::Assignment assignment;
  for (const JsonValue& s : document.at("server").as_array()) {
    const std::int64_t index = s.as_int();
    if (index < 0) throw std::runtime_error("assignment: negative server");
    assignment.server.push_back(static_cast<std::size_t>(index));
  }
  for (const JsonValue& a : document.at("alloc").as_array()) {
    assignment.alloc.push_back(a.as_number());
  }
  if (assignment.server.size() != assignment.alloc.size()) {
    throw std::runtime_error("assignment: server/alloc arity mismatch");
  }
  return assignment;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  out << contents;
  if (!out) throw std::runtime_error("write failed: " + path);
}

core::Instance load_instance(const std::string& path) {
  return instance_from_json(support::json_parse(read_file(path)));
}

void save_instance(const core::Instance& instance, const std::string& path) {
  write_file(path, instance_to_json(instance).dump(2) + "\n");
}

}  // namespace aa::io
