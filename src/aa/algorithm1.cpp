#include "aa/algorithm1.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "aa/certify.hpp"
#include "alloc/super_optimal.hpp"
#include "obs/registry.hpp"
#include "obs/session.hpp"

namespace aa::core {

namespace {

/// Computes F, G and packages a SolveResult for an assignment built on the
/// given linearization. Shared with algorithm2.cpp via solve_pipeline.hpp?
/// Kept local: each algorithm file is self-contained and tiny.
SolveResult package(const Instance& instance, Assignment assignment,
                    std::span<const util::Linearized> linearized,
                    std::vector<Resource> c_hat, double f_hat) {
  SolveResult result;
  result.utility = total_utility(instance, assignment);
  double g_total = 0.0;
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    g_total += linearized[i].value(assignment.alloc[i]);
  }
  result.linearized_utility = g_total;
  result.super_optimal_utility = f_hat;
  result.c_hat = std::move(c_hat);
  result.assignment = std::move(assignment);
  return result;
}

}  // namespace

Assignment assign_algorithm1_reference(
    const Instance& instance, std::span<const util::Linearized> linearized) {
  const std::size_t n = instance.num_threads();
  const std::size_t m = instance.num_servers;
  if (linearized.size() != n) {
    throw std::invalid_argument("algorithm1: linearization size mismatch");
  }

  std::vector<Resource> remaining(m, instance.capacity);
  std::vector<bool> assigned(n, false);
  Assignment out;
  out.server.assign(n, 0);
  out.alloc.assign(n, 0.0);

  for (std::size_t round = 0; round < n; ++round) {
    // Server with the most remaining capacity (used both to test membership
    // in U cheaply and as the "greatest utility" tie-break for full threads).
    const auto max_it = std::max_element(remaining.begin(), remaining.end());
    const auto max_server =
        static_cast<std::size_t>(max_it - remaining.begin());
    const Resource max_remaining = *max_it;

    // Line 6: best full candidate — largest peak among threads whose
    // super-optimal allocation still fits somewhere.
    std::size_t best_full = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (assigned[i] || linearized[i].cap > max_remaining) continue;
      if (best_full == n || linearized[i].peak > linearized[best_full].peak) {
        best_full = i;
      }
    }

    std::size_t chosen = n;
    std::size_t target = max_server;
    if (best_full != n) {
      chosen = best_full;
      // Any server with C_j >= c_hat gives the same (full) utility; the
      // max-remaining server is one of them.
    } else {
      // Line 9: best unfull candidate — maximize g_i(C_j) over pairs.
      double best_value = -1.0;
      for (std::size_t i = 0; i < n; ++i) {
        if (assigned[i]) continue;
        for (std::size_t j = 0; j < m; ++j) {
          const double value =
              linearized[i].value(static_cast<double>(remaining[j]));
          if (value > best_value) {
            best_value = value;
            chosen = i;
            target = j;
          }
        }
      }
    }

    const Resource granted = std::min(linearized[chosen].cap,
                                      remaining[target]);
    out.server[chosen] = target;
    out.alloc[chosen] = static_cast<double>(granted);
    remaining[target] -= granted;
    assigned[chosen] = true;
  }
  return out;
}

// The incremental implementation below returns bit-identical assignments
// (tests/algorithm1_equivalence_test.cpp) by exploiting three invariants of
// the reference scan:
//
//   1. max_remaining never increases, so a thread whose c_hat once exceeded
//      it is "full"-ineligible forever. Walking a (peak desc, index asc)
//      pre-sort with a persistent cursor therefore yields exactly the
//      reference's full pick — ties included — in O(n) total.
//   2. g_i is nondecreasing, and nondecreasing under IEEE rounding too
//      (x/cap and peak*y are monotone per operation), so the best pair for
//      thread i is attained at max_remaining: the reference's line-9 scan of
//      all m*n pairs reduces to one g_i(max_remaining) per unassigned thread
//      — the identical double, since the reference evaluates that very
//      expression at every server holding max_remaining.
//   3. In the unfull branch every unassigned c_hat_i exceeds max_remaining,
//      so a pick with positive value zeroes its server: at most m such
//      rounds exist. Once a scan sees a zero maximum it stays zero (the
//      candidate set only shrinks, g is monotone), and the reference then
//      degenerates to "first unassigned thread onto server 0" — tracked
//      with a pointer instead of a rescan.
//
// Net effect: O(n log n + (n + m) m) instead of O(m n^2) for the
// assignment rounds, with the reference kept above as the differential-
// testing oracle and benchmark baseline (tools/aa_bench `alg1_reference`).
Assignment assign_algorithm1(const Instance& instance,
                             std::span<const util::Linearized> linearized) {
  const obs::ScopedPhase obs_phase(obs::metric::kPhaseAlg1Assign);
  const std::size_t n = instance.num_threads();
  const std::size_t m = instance.num_servers;
  if (linearized.size() != n) {
    throw std::invalid_argument("algorithm1: linearization size mismatch");
  }
  std::int64_t full_picks = 0;
  std::int64_t unfull_picks = 0;
  std::int64_t candidate_evaluations = 0;

  std::vector<Resource> remaining(m, instance.capacity);
  std::vector<bool> assigned(n, false);
  Assignment out;
  out.server.assign(n, 0);
  out.alloc.assign(n, 0.0);

  std::vector<std::size_t> by_peak(n);
  std::iota(by_peak.begin(), by_peak.end(), std::size_t{0});
  std::sort(by_peak.begin(), by_peak.end(),
            [&](std::size_t a, std::size_t b) {
              if (linearized[a].peak > linearized[b].peak) return true;
              if (linearized[a].peak < linearized[b].peak) return false;
              return a < b;
            });

  std::size_t cursor = 0;            // Next full candidate in by_peak.
  std::size_t first_unassigned = 0;  // Smallest unassigned thread index.
  bool zero_mode = false;            // All remaining unfull values are 0.

  for (std::size_t round = 0; round < n; ++round) {
    // First server holding the maximum remaining capacity (max_element
    // tie-break: smallest index).
    std::size_t max_server = 0;
    for (std::size_t j = 1; j < m; ++j) {
      if (remaining[j] > remaining[max_server]) max_server = j;
    }
    const Resource max_remaining = remaining[max_server];

    std::size_t chosen = n;
    std::size_t target = max_server;

    // Line 6: skipped entries are permanently out — assigned, or
    // c_hat > max_remaining with max_remaining nonincreasing (invariant 1).
    while (cursor < n) {
      const std::size_t i = by_peak[cursor];
      if (assigned[i] || linearized[i].cap > max_remaining) {
        ++cursor;
        continue;
      }
      chosen = i;
      break;
    }

    if (chosen != n) {
      ++full_picks;
      ++cursor;
    } else {
      ++unfull_picks;
      while (first_unassigned < n && assigned[first_unassigned]) {
        ++first_unassigned;
      }
      if (zero_mode || max_remaining <= 0) {
        // Every pair value is 0: the reference scan settles on its very
        // first pair, (first unassigned thread, server 0).
        chosen = first_unassigned;
        target = 0;
      } else {
        // Line 9 via invariant 2: one evaluation per unassigned thread at
        // max_remaining, first maximum wins (the reference's strict `>`).
        double best_value = -1.0;
        for (std::size_t i = first_unassigned; i < n; ++i) {
          if (assigned[i]) continue;
          ++candidate_evaluations;
          const double value =
              linearized[i].value(static_cast<double>(max_remaining));
          if (value > best_value) {
            best_value = value;
            chosen = i;
          }
        }
        if (best_value > 0.0) {
          // The reference's pair is (chosen, smallest j attaining the
          // maximum); some server holds max_remaining, so the scan below
          // always terminates with the identical target.
          for (std::size_t j = 0; j < m; ++j) {
            ++candidate_evaluations;
            const double value =
                linearized[chosen].value(static_cast<double>(remaining[j]));
            if (value == best_value) {
              target = j;
              break;
            }
          }
        } else {
          // Invariant 3: zero now means zero for the rest of the run.
          zero_mode = true;
          target = 0;
        }
      }
    }

    const Resource granted = std::min(linearized[chosen].cap,
                                      remaining[target]);
    out.server[chosen] = target;
    out.alloc[chosen] = static_cast<double>(granted);
    remaining[target] -= granted;
    assigned[chosen] = true;
  }
  obs::count(obs::metric::kAlg1FullPicks, full_picks);
  obs::count(obs::metric::kAlg1UnfullPicks, unfull_picks);
  obs::count(obs::metric::kAlg1CandidateEvaluations, candidate_evaluations);
  return out;
}

SolveResult solve_algorithm1(const Instance& instance) {
  const obs::ScopedPhase obs_phase(obs::metric::kPhaseAlg1Solve);
  obs::count(obs::metric::kAlg1Solves);
  instance.validate();
  alloc::SuperOptimalResult so = alloc::super_optimal_routed(
      instance.threads, instance.num_servers, instance.capacity);
  std::vector<util::Linearized> linearized;
  {
    const obs::ScopedPhase linearize_phase(obs::metric::kPhaseLinearize);
    linearized = util::linearize(instance.threads, so.c_hat);
  }
  Assignment assignment = assign_algorithm1(instance, linearized);
  SolveResult result = package(instance, std::move(assignment), linearized,
                               std::move(so.c_hat), so.utility);
  certify_and_record(instance, result, "algorithm1");
  return result;
}

}  // namespace aa::core
