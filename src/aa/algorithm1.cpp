#include "aa/algorithm1.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "aa/certify.hpp"
#include "alloc/super_optimal.hpp"
#include "obs/registry.hpp"
#include "obs/session.hpp"

namespace aa::core {

namespace {

/// Computes F, G and packages a SolveResult for an assignment built on the
/// given linearization. Shared with algorithm2.cpp via solve_pipeline.hpp?
/// Kept local: each algorithm file is self-contained and tiny.
SolveResult package(const Instance& instance, Assignment assignment,
                    std::span<const util::Linearized> linearized,
                    std::vector<Resource> c_hat, double f_hat) {
  SolveResult result;
  result.utility = total_utility(instance, assignment);
  double g_total = 0.0;
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    g_total += linearized[i].value(assignment.alloc[i]);
  }
  result.linearized_utility = g_total;
  result.super_optimal_utility = f_hat;
  result.c_hat = std::move(c_hat);
  result.assignment = std::move(assignment);
  return result;
}

}  // namespace

Assignment assign_algorithm1(const Instance& instance,
                             std::span<const util::Linearized> linearized) {
  const obs::ScopedPhase obs_phase(obs::metric::kPhaseAlg1Assign);
  const std::size_t n = instance.num_threads();
  const std::size_t m = instance.num_servers;
  if (linearized.size() != n) {
    throw std::invalid_argument("algorithm1: linearization size mismatch");
  }
  std::int64_t full_picks = 0;
  std::int64_t unfull_picks = 0;
  std::int64_t pair_evaluations = 0;

  std::vector<Resource> remaining(m, instance.capacity);
  std::vector<bool> assigned(n, false);
  Assignment out;
  out.server.assign(n, 0);
  out.alloc.assign(n, 0.0);

  for (std::size_t round = 0; round < n; ++round) {
    // Server with the most remaining capacity (used both to test membership
    // in U cheaply and as the "greatest utility" tie-break for full threads).
    const auto max_it = std::max_element(remaining.begin(), remaining.end());
    const auto max_server =
        static_cast<std::size_t>(max_it - remaining.begin());
    const Resource max_remaining = *max_it;

    // Line 6: best full candidate — largest peak among threads whose
    // super-optimal allocation still fits somewhere.
    std::size_t best_full = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (assigned[i] || linearized[i].cap > max_remaining) continue;
      if (best_full == n || linearized[i].peak > linearized[best_full].peak) {
        best_full = i;
      }
    }

    std::size_t chosen = n;
    std::size_t target = max_server;
    if (best_full != n) {
      chosen = best_full;
      ++full_picks;
      // Any server with C_j >= c_hat gives the same (full) utility; the
      // max-remaining server is one of them.
    } else {
      // Line 9: best unfull candidate — maximize g_i(C_j) over pairs.
      double best_value = -1.0;
      for (std::size_t i = 0; i < n; ++i) {
        if (assigned[i]) continue;
        for (std::size_t j = 0; j < m; ++j) {
          ++pair_evaluations;
          const double value =
              linearized[i].value(static_cast<double>(remaining[j]));
          if (value > best_value) {
            best_value = value;
            chosen = i;
            target = j;
          }
        }
      }
      ++unfull_picks;
    }

    const Resource granted = std::min(linearized[chosen].cap,
                                      remaining[target]);
    out.server[chosen] = target;
    out.alloc[chosen] = static_cast<double>(granted);
    remaining[target] -= granted;
    assigned[chosen] = true;
  }
  obs::count(obs::metric::kAlg1FullPicks, full_picks);
  obs::count(obs::metric::kAlg1UnfullPicks, unfull_picks);
  obs::count(obs::metric::kAlg1PairEvaluations, pair_evaluations);
  return out;
}

SolveResult solve_algorithm1(const Instance& instance) {
  const obs::ScopedPhase obs_phase(obs::metric::kPhaseAlg1Solve);
  obs::count(obs::metric::kAlg1Solves);
  instance.validate();
  alloc::SuperOptimalResult so = alloc::super_optimal(
      instance.threads, instance.num_servers, instance.capacity);
  std::vector<util::Linearized> linearized;
  {
    const obs::ScopedPhase linearize_phase(obs::metric::kPhaseLinearize);
    linearized = util::linearize(instance.threads, so.c_hat);
  }
  Assignment assignment = assign_algorithm1(instance, linearized);
  SolveResult result = package(instance, std::move(assignment), linearized,
                               std::move(so.c_hat), so.utility);
  certify_and_record(instance, result, "algorithm1");
  return result;
}

}  // namespace aa::core
