#include "aa/heterogeneous.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <sstream>
#include <stdexcept>

#include "alloc/allocator.hpp"
#include "alloc/super_optimal.hpp"
#include "utility/linearized.hpp"

namespace aa::core {

Resource HeteroInstance::max_capacity() const {
  if (capacities.empty()) return 0;
  return *std::max_element(capacities.begin(), capacities.end());
}

Resource HeteroInstance::total_capacity() const {
  return std::accumulate(capacities.begin(), capacities.end(), Resource{0});
}

void HeteroInstance::validate() const {
  if (capacities.empty()) {
    throw std::invalid_argument("hetero instance: need at least one server");
  }
  for (const Resource c : capacities) {
    if (c < 0) {
      throw std::invalid_argument("hetero instance: negative capacity");
    }
  }
  const Resource max_cap = max_capacity();
  for (std::size_t i = 0; i < threads.size(); ++i) {
    if (threads[i] == nullptr) {
      throw std::invalid_argument("hetero instance: null utility for thread " +
                                  std::to_string(i));
    }
    if (threads[i]->capacity() < max_cap) {
      throw std::invalid_argument(
          "hetero instance: thread " + std::to_string(i) +
          " utility domain smaller than the largest server");
    }
  }
}

double total_utility(const HeteroInstance& instance,
                     const Assignment& assignment) {
  if (assignment.server.size() != instance.num_threads() ||
      assignment.alloc.size() != instance.num_threads()) {
    throw std::invalid_argument("total_utility: assignment size mismatch");
  }
  double total = 0.0;
  for (std::size_t i = 0; i < instance.num_threads(); ++i) {
    total += instance.threads[i]->value(assignment.alloc[i]);
  }
  return total;
}

std::string check_assignment(const HeteroInstance& instance,
                             const Assignment& assignment, double tol) {
  const std::size_t n = instance.num_threads();
  if (assignment.server.size() != n || assignment.alloc.size() != n) {
    return "assignment arrays do not match the thread count";
  }
  std::vector<double> load(instance.num_servers(), 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (assignment.server[i] >= instance.num_servers()) {
      return "thread assigned to nonexistent server";
    }
    if (assignment.alloc[i] < -tol) {
      return "negative allocation";
    }
    load[assignment.server[i]] += assignment.alloc[i];
  }
  for (std::size_t j = 0; j < load.size(); ++j) {
    if (load[j] > static_cast<double>(instance.capacities[j]) + tol) {
      std::ostringstream msg;
      msg << "server " << j << " overloaded: " << load[j] << " > "
          << instance.capacities[j];
      return msg.str();
    }
  }
  return {};
}

SolveResult solve_algorithm2_hetero(const HeteroInstance& instance) {
  instance.validate();
  const std::size_t n = instance.num_threads();
  const std::size_t m = instance.num_servers();

  // Pooled super-optimal bound: sum of allocations <= total capacity, each
  // thread bounded by the largest single server it could land on.
  const alloc::AllocationResult so = alloc::allocate_pooled_routed(
      instance.threads, instance.total_capacity(), instance.max_capacity());
  const std::vector<util::Linearized> linearized =
      util::linearize(instance.threads, so.amounts);

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return linearized[a].peak > linearized[b].peak;
                   });
  if (n > m) {
    std::stable_sort(order.begin() + static_cast<std::ptrdiff_t>(m),
                     order.end(), [&](std::size_t a, std::size_t b) {
                       return linearized[a].density() > linearized[b].density();
                     });
  }

  using HeapEntry = std::pair<Resource, std::size_t>;
  auto cmp = [](const HeapEntry& a, const HeapEntry& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second > b.second;
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, decltype(cmp)> heap(
      cmp);
  for (std::size_t j = 0; j < m; ++j) heap.push({instance.capacities[j], j});

  Assignment assignment;
  assignment.server.assign(n, 0);
  assignment.alloc.assign(n, 0.0);
  for (const std::size_t i : order) {
    const auto [remaining, j] = heap.top();
    heap.pop();
    const Resource granted = std::min(linearized[i].cap, remaining);
    assignment.server[i] = j;
    assignment.alloc[i] = static_cast<double>(granted);
    heap.push({remaining - granted, j});
  }

  SolveResult result;
  result.utility = total_utility(instance, assignment);
  double g_total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    g_total += linearized[i].value(assignment.alloc[i]);
  }
  result.linearized_utility = g_total;
  result.super_optimal_utility = so.total_utility;
  result.c_hat = so.amounts;
  result.assignment = std::move(assignment);
  return result;
}

Assignment heuristic_uu_hetero(const HeteroInstance& instance) {
  const std::size_t n = instance.num_threads();
  const std::size_t m = instance.num_servers();
  Assignment out;
  out.server.assign(n, 0);
  out.alloc.assign(n, 0.0);
  std::vector<std::size_t> counts(m, 0);
  for (std::size_t i = 0; i < n; ++i) {
    out.server[i] = i % m;
    ++counts[i % m];
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = out.server[i];
    out.alloc[i] = static_cast<double>(instance.capacities[j]) /
                   static_cast<double>(counts[j]);
  }
  return out;
}

namespace {

double exact_hetero_recurse(const HeteroInstance& instance,
                            std::vector<std::size_t>& labels,
                            std::size_t thread) {
  if (thread == instance.num_threads()) {
    double total = 0.0;
    for (std::size_t j = 0; j < instance.num_servers(); ++j) {
      std::vector<UtilityPtr> members;
      for (std::size_t i = 0; i < labels.size(); ++i) {
        if (labels[i] == j) members.push_back(instance.threads[i]);
      }
      if (members.empty()) continue;
      total += alloc::allocate_greedy(members, instance.capacities[j],
                                      instance.capacities[j])
                   .total_utility;
    }
    return total;
  }
  double best = -1.0;
  for (std::size_t j = 0; j < instance.num_servers(); ++j) {
    labels[thread] = j;
    best = std::max(best, exact_hetero_recurse(instance, labels, thread + 1));
  }
  return best;
}

}  // namespace

double solve_exact_hetero(const HeteroInstance& instance,
                          std::size_t max_threads) {
  instance.validate();
  if (instance.num_threads() > max_threads) {
    throw std::invalid_argument(
        "solve_exact_hetero: instance too large for exhaustive search");
  }
  if (instance.num_threads() == 0) return 0.0;
  std::vector<std::size_t> labels(instance.num_threads(), 0);
  return exact_hetero_recurse(instance, labels, 0);
}

}  // namespace aa::core
