#pragma once

// Local-search post-processing on top of an AA assignment.
//
// Neither paper algorithm revisits a placement decision once made; a
// standard practical add-on is hill climbing over the placement with exact
// per-server re-allocation as the evaluation oracle:
//
//   * move:  relocate one thread to another server;
//   * swap:  exchange the servers of two threads.
//
// Every accepted step strictly improves total utility, so termination is
// guaranteed; each evaluation re-solves only the (at most two) touched
// servers. Starting from Algorithm 2's assignment this typically closes
// most of the remaining gap to the super-optimal bound (see
// bench/ablation_local_search) at a cost the paper's algorithms avoid —
// which is exactly the trade-off worth quantifying.

#include <cstddef>

#include "aa/problem.hpp"

namespace aa::core {

struct LocalSearchOptions {
  std::size_t max_rounds = 16;   ///< Full improvement sweeps before stopping.
  bool enable_moves = true;
  bool enable_swaps = true;
  double min_gain = 1e-9;        ///< Required absolute improvement per step.
};

struct LocalSearchResult {
  Assignment assignment;
  double utility = 0.0;
  std::size_t moves_applied = 0;
  std::size_t swaps_applied = 0;
  std::size_t rounds = 0;
};

/// Improves `start` by move/swap hill climbing; allocations in the result
/// are per-server exact (the search re-allocates every server it touches,
/// and all servers once up front).
[[nodiscard]] LocalSearchResult improve_local_search(
    const Instance& instance, const Assignment& start,
    const LocalSearchOptions& options = {});

}  // namespace aa::core
