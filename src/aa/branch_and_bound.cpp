#include "aa/branch_and_bound.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "aa/local_search.hpp"
#include "aa/refine.hpp"
#include "alloc/allocator.hpp"
#include "alloc/super_optimal.hpp"

namespace aa::core {

namespace {

class Search {
 public:
  Search(const Instance& instance, const BranchAndBoundOptions& options)
      : instance_(instance), options_(options) {
    const std::size_t n = instance.num_threads();

    // Branch big threads first: nonincreasing standalone utility f(C).
    order_.resize(n);
    std::iota(order_.begin(), order_.end(), 0);
    std::stable_sort(order_.begin(), order_.end(),
                     [&](std::size_t a, std::size_t b) {
                       return standalone(a) > standalone(b);
                     });

    // Suffix relaxation: SO utility of threads order_[t..n-1] over the
    // pooled capacity m*C (Lemma V.2 applied to the remainder). Because
    // the branch order is fixed, the "remaining" set at depth t is always
    // this suffix, so the bounds are precomputable.
    suffix_bound_.assign(n + 1, 0.0);
    for (std::size_t t = n; t-- > 0;) {
      std::vector<UtilityPtr> suffix;
      suffix.reserve(n - t);
      for (std::size_t k = t; k < n; ++k) {
        suffix.push_back(instance.threads[order_[k]]);
      }
      // Deliberately NOT routed through the strategy seam: pruning needs a
      // true upper bound, and the price strategy's F can dip below F_hat.
      suffix_bound_[t] = alloc::super_optimal(suffix, instance.num_servers,
                                              instance.capacity)
                             .utility;
    }

    // Warm incumbent: Algorithm 2 + refinement + local search.
    const SolveResult seed = solve_algorithm2_refined(instance);
    const LocalSearchResult improved =
        improve_local_search(instance, seed.assignment);
    best_utility_ = improved.utility;
    best_ = improved.assignment;

    groups_.assign(instance.num_servers, {});
    group_value_.assign(instance.num_servers, 0.0);
  }

  BranchAndBoundResult run() {
    recurse(0, 0, 0.0);
    BranchAndBoundResult result;
    result.assignment = std::move(best_);
    result.utility = best_utility_;
    result.nodes_explored = nodes_;
    result.proven_optimal = nodes_ < options_.max_nodes;
    return result;
  }

 private:
  [[nodiscard]] double standalone(std::size_t i) const {
    return instance_.threads[i]->value(
        static_cast<double>(instance_.capacity));
  }

  [[nodiscard]] double group_value(const std::vector<std::size_t>& group)
      const {
    if (group.empty()) return 0.0;
    std::vector<UtilityPtr> members;
    members.reserve(group.size());
    for (const std::size_t i : group) members.push_back(instance_.threads[i]);
    return alloc::allocate_greedy(members, instance_.capacity,
                                  instance_.capacity)
        .total_utility;
  }

  void record_leaf(double assigned_value) {
    if (assigned_value <= best_utility_ + 1e-12) return;
    best_utility_ = assigned_value;
    best_.server.assign(instance_.num_threads(), 0);
    best_.alloc.assign(instance_.num_threads(), 0.0);
    for (std::size_t j = 0; j < groups_.size(); ++j) {
      if (groups_[j].empty()) continue;
      std::vector<UtilityPtr> members;
      members.reserve(groups_[j].size());
      for (const std::size_t i : groups_[j]) {
        members.push_back(instance_.threads[i]);
      }
      const alloc::AllocationResult allocation = alloc::allocate_greedy(
          members, instance_.capacity, instance_.capacity);
      for (std::size_t k = 0; k < groups_[j].size(); ++k) {
        best_.server[groups_[j][k]] = j;
        best_.alloc[groups_[j][k]] =
            static_cast<double>(allocation.amounts[k]);
      }
    }
  }

  void recurse(std::size_t depth, std::size_t used, double assigned_value) {
    if (nodes_ >= options_.max_nodes) return;
    ++nodes_;
    if (depth == instance_.num_threads()) {
      record_leaf(assigned_value);
      return;
    }
    // Subadditive bound: exact value of the current groups (each with its
    // own full server) + pooled SO of the unplaced suffix. Prune when it
    // cannot beat the incumbent.
    if (assigned_value + suffix_bound_[depth] <= best_utility_ + 1e-9) {
      return;
    }

    const std::size_t thread = order_[depth];
    const std::size_t limit =
        std::min(instance_.num_servers, used + 1);  // Canonical numbering.
    for (std::size_t j = 0; j < limit; ++j) {
      const double old_value = group_value_[j];
      groups_[j].push_back(thread);
      group_value_[j] = group_value(groups_[j]);
      recurse(depth + 1, std::max(used, j + 1),
              assigned_value - old_value + group_value_[j]);
      groups_[j].pop_back();
      group_value_[j] = old_value;
    }
  }

  const Instance& instance_;
  BranchAndBoundOptions options_;
  std::vector<std::size_t> order_;
  std::vector<double> suffix_bound_;
  std::vector<std::vector<std::size_t>> groups_;
  std::vector<double> group_value_;
  Assignment best_;
  double best_utility_ = 0.0;
  std::uint64_t nodes_ = 0;
};

}  // namespace

BranchAndBoundResult solve_branch_and_bound(
    const Instance& instance, const BranchAndBoundOptions& options) {
  instance.validate();
  if (instance.num_threads() > options.max_threads) {
    throw std::invalid_argument(
        "branch and bound: instance exceeds max_threads");
  }
  if (instance.num_threads() == 0) {
    BranchAndBoundResult empty;
    empty.proven_optimal = true;
    empty.nodes_explored = 1;
    return empty;
  }
  return Search(instance, options).run();
}

}  // namespace aa::core
