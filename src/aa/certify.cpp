#include "aa/certify.hpp"

#include <numeric>
#include <string>

#include "obs/session.hpp"

namespace aa::core {

namespace {

obs::CertificateInput build_input(const Instance& instance,
                                  const SolveResult& result,
                                  std::string_view solver,
                                  bool check_concavity) {
  obs::CertificateInput input;
  input.solver = std::string(solver);
  input.alpha = kApproximationRatio;
  input.f_alg = result.utility;
  input.f_linearized = result.linearized_utility;
  input.f_super_optimal = result.super_optimal_utility;
  input.capacity = static_cast<double>(instance.capacity);
  input.server_loads = server_loads(instance, result.assignment);
  input.c_hat_total = static_cast<double>(std::accumulate(
      result.c_hat.begin(), result.c_hat.end(), Resource{0}));
  input.pooled_capacity = static_cast<double>(instance.num_servers) *
                          static_cast<double>(instance.capacity);
  input.structural_error = check_assignment(instance, result.assignment);
  if (check_concavity) {
    input.concavity_checked = true;
    input.utilities_concave = true;
    for (const UtilityPtr& f : instance.threads) {
      if (!util::is_valid_on_grid(*f)) {
        input.utilities_concave = false;
        break;
      }
    }
  }
  return input;
}

}  // namespace

obs::Certificate certify(const Instance& instance, const SolveResult& result,
                         std::string_view solver,
                         const CertifyOptions& options) {
  return obs::check_certificate(
      build_input(instance, result, solver, options.check_concavity),
      options.rel_tol);
}

void certify_and_record(const Instance& instance, const SolveResult& result,
                        std::string_view solver) {
  if (obs::Session::current() == nullptr) return;
  obs::record_certificate(
      build_input(instance, result, solver, /*check_concavity=*/false));
}

}  // namespace aa::core
