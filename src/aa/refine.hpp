#pragma once

// Per-server allocation refinement.
//
// Algorithms 1 and 2 output the allocations of the *linearized* problem
// (full threads get c_hat, unfull threads get the server's leftovers). Once
// the assignment is fixed, however, each server is an independent
// single-server concave allocation problem — polynomially solvable ([12],
// [16]) — so re-running the exact allocator per server can only improve the
// objective while preserving every approximation guarantee.
//
// This refinement is what closes the gap between the raw pseudocode
// (~97.5-98.5% of the super-optimal bound on the paper's workloads) and the
// paper's reported ">= 99% of optimal": the authors' evaluation pipeline
// re-allocates within servers, as any real deployment (e.g. a cache
// partitioner) would. See DESIGN.md and bench/ablation_design.

#include "aa/problem.hpp"
#include "aa/solve_result.hpp"

namespace aa::core {

/// Re-optimizes allocations within every server, keeping the placement
/// fixed. Never decreases total utility.
[[nodiscard]] Assignment reoptimize_allocations(const Instance& instance,
                                                const Assignment& placement);

/// Algorithm 2 followed by per-server re-allocation (the paper's evaluated
/// configuration). `linearized_utility` and `super_optimal_utility` report
/// the pre-refinement certificates; `utility` is post-refinement.
[[nodiscard]] SolveResult solve_algorithm2_refined(const Instance& instance);

/// Algorithm 1 followed by per-server re-allocation.
[[nodiscard]] SolveResult solve_algorithm1_refined(const Instance& instance);

}  // namespace aa::core
