#pragma once

// Multi-resource extension (paper Section VIII future work: "we would like
// to extend our algorithm to accommodate ... multiple types [of] resources").
//
// Model: every server carries R resource types with capacities C_1..C_R
// (servers homogeneous, as in the paper); thread i's utility is ADDITIVE
// across types, f_i(x_1..x_R) = sum_r f_ir(x_r) with each f_ir concave.
// Additivity keeps the structure of the paper intact:
//
//   * the pooled super-optimal bound decomposes per type
//     (F_hat = sum_r F_hat_r, each computed exactly as in Definition V.1);
//   * once a placement is fixed, the allocation decomposes into R
//     independent single-server concave problems per server — solved
//     exactly, so the only heuristic part is the placement;
//   * the Algorithm 2 generalization sorts by the multi-type linearized
//     peak and places each thread on the server where it obtains the
//     greatest linearized utility from the remaining capacities (ties
//     broken by total normalized remaining capacity, the heap rule) — the
//     per-type-blind "fullest server" rule demonstrably mis-packs threads
//     with skewed type demands.
//
// No approximation factor is claimed (the paper leaves this open); quality
// is measured against the exact solver in tests and bench/ext_multiresource.
// Cross-type complements (e.g. Leontief min_r f_ir) are out of scope here —
// they break the per-type decomposition that makes this extension exact
// after placement.

#include <vector>

#include "aa/problem.hpp"

namespace aa::core {

/// A thread's per-type utility bundle: one concave function per resource
/// type; f(x_vec) = sum_r parts[r](x_vec[r]).
struct MultiUtility {
  std::vector<UtilityPtr> parts;
};

struct MultiInstance {
  std::size_t num_servers = 0;
  std::vector<Resource> capacities;  ///< One per resource type (same on
                                     ///< every server).
  std::vector<MultiUtility> threads;

  [[nodiscard]] std::size_t num_types() const noexcept {
    return capacities.size();
  }
  [[nodiscard]] std::size_t num_threads() const noexcept {
    return threads.size();
  }

  /// Structural validation (shape, domains, nonnegativity); throws
  /// std::invalid_argument.
  void validate() const;
};

/// thread i runs on server[i] with alloc[i][r] units of type r.
struct MultiAssignment {
  std::vector<std::size_t> server;
  std::vector<std::vector<double>> alloc;

  [[nodiscard]] std::size_t size() const noexcept { return server.size(); }
};

[[nodiscard]] double total_utility(const MultiInstance& instance,
                                   const MultiAssignment& assignment);

/// Empty string when valid; first violation otherwise.
[[nodiscard]] std::string check_assignment(const MultiInstance& instance,
                                           const MultiAssignment& assignment,
                                           double tol = 1e-9);

struct MultiSolveResult {
  MultiAssignment assignment;
  double utility = 0.0;
  double super_optimal_utility = 0.0;  ///< sum_r per-type pooled bound.
};

/// Algorithm 2 generalized to additive multi-resource instances: per-type
/// super-optimal allocations, peak/density sorting on the summed linearized
/// utilities, normalized-remaining max-heap placement, then exact per-type
/// re-allocation within every server.
[[nodiscard]] MultiSolveResult solve_algorithm2_multi(
    const MultiInstance& instance);

/// Round-robin placement + exact per-server allocation (the fair baseline).
[[nodiscard]] MultiSolveResult solve_round_robin_multi(
    const MultiInstance& instance);

/// Exhaustive placement search with exact per-server allocations
/// (n <= max_threads). Returns the optimal utility.
[[nodiscard]] double solve_exact_multi(const MultiInstance& instance,
                                       std::size_t max_threads = 10);

}  // namespace aa::core
