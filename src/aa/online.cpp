#include "aa/online.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "aa/refine.hpp"

namespace aa::core {

std::size_t count_migrations(const Assignment& before,
                             const Assignment& after) {
  std::size_t moves = 0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (before.server[i] != after.server[i]) ++moves;
  }
  return moves;
}

namespace {

Instance scaled_instance(const Instance& base,
                         const std::vector<double>& factors) {
  Instance epoch = base;
  for (std::size_t i = 0; i < base.threads.size(); ++i) {
    epoch.threads[i] =
        std::make_shared<util::ScaledUtility>(base.threads[i], factors[i]);
  }
  return epoch;
}

}  // namespace

OnlineResult run_online(const Instance& base, OnlinePolicy policy,
                        const OnlineConfig& config, support::Rng& rng) {
  base.validate();
  const std::size_t n = base.num_threads();
  std::vector<double> factors(n, 1.0);

  OnlineResult result;
  Assignment current;  // Placement carried across epochs.
  bool have_current = false;

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    if (epoch > 0) {
      for (double& f : factors) {
        f = std::clamp(f * std::exp(config.drift_sigma * rng.normal()),
                       config.factor_min, config.factor_max);
      }
    }
    const Instance instance = scaled_instance(base, factors);
    const SolveResult fresh = solve_algorithm2_refined(instance);
    result.oracle_utility += fresh.utility;

    if (!have_current) {
      current = fresh.assignment;
      have_current = true;
      result.total_utility += fresh.utility;
      continue;
    }

    switch (policy) {
      case OnlinePolicy::kStatic: {
        // Frozen epoch-0 assignment and allocations.
        result.total_utility += total_utility(instance, current);
        break;
      }
      case OnlinePolicy::kResolve: {
        result.migrations += count_migrations(current, fresh.assignment);
        current = fresh.assignment;
        result.total_utility += fresh.utility;
        break;
      }
      case OnlinePolicy::kSticky: {
        const Assignment retuned = reoptimize_allocations(instance, current);
        const double retained = total_utility(instance, retuned);
        if (sticky_should_migrate(fresh.utility, retained, config.hysteresis)) {
          result.migrations += count_migrations(current, fresh.assignment);
          current = fresh.assignment;
          result.total_utility += fresh.utility;
        } else {
          current = retuned;
          result.total_utility += retained;
        }
        break;
      }
    }
  }
  return result;
}

}  // namespace aa::core
