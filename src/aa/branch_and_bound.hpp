#pragma once

// Branch-and-bound exact AA solver.
//
// The exhaustive solver (aa/exact.hpp) tops out around n ~ 10-12. This
// solver prunes the same canonical-partition tree with the paper's own
// relaxation: at any partial placement, an upper bound on the completion is
//
//     sum of exact utilities of the servers closed so far
//   + super-optimal utility (Definition V.1 / Lemma V.2) of the remaining
//     threads over the remaining servers' pooled capacity,
//
// which is cheap (one pooled concave allocation per node) and tight enough
// to reach n ~ 20-24 on typical workloads. Threads are branched in
// nonincreasing peak order (big decisions first), and the incumbent is
// seeded with Algorithm 2 + refinement + local search, so pruning starts
// strong.
//
// This is an engineering extension (the paper only brute-forces nothing —
// its evaluation uses the SO bound); it exists to extend the validated
// range of the approximation-ratio experiments. bench/bm_exact compares
// its reach against plain enumeration.

#include <cstddef>
#include <cstdint>

#include "aa/problem.hpp"

namespace aa::core {

struct BranchAndBoundOptions {
  std::size_t max_threads = 24;      ///< Hard input-size guard.
  std::uint64_t max_nodes = 50'000'000;  ///< Search-effort guard.
};

struct BranchAndBoundResult {
  Assignment assignment;
  double utility = 0.0;
  std::uint64_t nodes_explored = 0;
  bool proven_optimal = false;  ///< false only when max_nodes was hit.
};

/// Exact (up to the node budget) AA optimum. Throws std::invalid_argument
/// when n exceeds options.max_threads.
[[nodiscard]] BranchAndBoundResult solve_branch_and_bound(
    const Instance& instance, const BranchAndBoundOptions& options = {});

}  // namespace aa::core
