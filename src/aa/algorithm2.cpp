#include "aa/algorithm2.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <stdexcept>
#include <vector>

#include "aa/certify.hpp"
#include "alloc/super_optimal.hpp"
#include "obs/registry.hpp"
#include "obs/session.hpp"

namespace aa::core {

namespace {

SolveResult package(const Instance& instance, Assignment assignment,
                    std::span<const util::Linearized> linearized,
                    std::vector<Resource> c_hat, double f_hat) {
  SolveResult result;
  result.utility = total_utility(instance, assignment);
  double g_total = 0.0;
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    g_total += linearized[i].value(assignment.alloc[i]);
  }
  result.linearized_utility = g_total;
  result.super_optimal_utility = f_hat;
  result.c_hat = std::move(c_hat);
  result.assignment = std::move(assignment);
  return result;
}

}  // namespace

Assignment assign_algorithm2_with_options(
    const Instance& instance, std::span<const util::Linearized> linearized,
    const Algorithm2Options& options) {
  const obs::ScopedPhase obs_phase(obs::metric::kPhaseAlg2Assign);
  const std::size_t n = instance.num_threads();
  const std::size_t m = instance.num_servers;
  if (linearized.size() != n) {
    throw std::invalid_argument("algorithm2: linearization size mismatch");
  }
  obs::count(obs::metric::kAlg2ThreadsAssigned, static_cast<std::int64_t>(n));

  // Line 1: nonincreasing peak order (stable; ties keep thread index order).
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  if (options.sort_by_peak) {
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return linearized[a].peak > linearized[b].peak;
                     });
  }
  // Line 2: re-sort the tail (threads m+1..n) by ramp density.
  if (options.resort_tail_by_density && n > m) {
    const auto tail = order.begin() + static_cast<std::ptrdiff_t>(m);
    if (options.density_nonincreasing) {
      std::stable_sort(tail, order.end(), [&](std::size_t a, std::size_t b) {
        return linearized[a].density() > linearized[b].density();
      });
    } else {
      std::stable_sort(tail, order.end(), [&](std::size_t a, std::size_t b) {
        return linearized[a].density() < linearized[b].density();
      });
    }
  }

  // Lines 3-4: server remaining capacities in a max-heap. Ties prefer the
  // lowest server index for determinism.
  using HeapEntry = std::pair<Resource, std::size_t>;  // (remaining, -index)
  auto cmp = [](const HeapEntry& a, const HeapEntry& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second > b.second;
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, decltype(cmp)> heap(
      cmp);
  for (std::size_t j = 0; j < m; ++j) {
    heap.push({instance.capacity, j});
  }

  Assignment out;
  out.server.assign(n, 0);
  out.alloc.assign(n, 0.0);

  // Lines 5-10: fullest server first, allocation min(c_hat_i, C_j).
  for (const std::size_t i : order) {
    const auto [remaining, j] = heap.top();
    heap.pop();
    const Resource granted = std::min(linearized[i].cap, remaining);
    out.server[i] = j;
    out.alloc[i] = static_cast<double>(granted);
    heap.push({remaining - granted, j});
  }
  return out;
}

Assignment assign_algorithm2(const Instance& instance,
                             std::span<const util::Linearized> linearized) {
  return assign_algorithm2_with_options(instance, linearized,
                                        Algorithm2Options{});
}

SolveResult solve_algorithm2(const Instance& instance) {
  const obs::ScopedPhase obs_phase(obs::metric::kPhaseAlg2Solve);
  obs::count(obs::metric::kAlg2Solves);
  instance.validate();
  alloc::SuperOptimalResult so = alloc::super_optimal_routed(
      instance.threads, instance.num_servers, instance.capacity);
  std::vector<util::Linearized> linearized;
  {
    const obs::ScopedPhase linearize_phase(obs::metric::kPhaseLinearize);
    linearized = util::linearize(instance.threads, so.c_hat);
  }
  Assignment assignment = assign_algorithm2(instance, linearized);
  SolveResult result = package(instance, std::move(assignment), linearized,
                               std::move(so.c_hat), so.utility);
  certify_and_record(instance, result, "algorithm2");
  return result;
}

}  // namespace aa::core
