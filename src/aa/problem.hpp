#pragma once

// The AA (assign-and-allocate) problem model (paper Section III).
//
// An Instance bundles m homogeneous servers of capacity C with n threads,
// each carrying a concave utility function. An Assignment gives, for every
// thread, a server index r_i and an allocation c_i; validity requires each
// server's allocations to sum to at most C. The objective is
// sum_i f_i(c_i) (Section III), computed by total_utility().

#include <cstddef>
#include <string>
#include <vector>

#include "utility/utility_function.hpp"

namespace aa::core {

using util::Resource;
using util::UtilityPtr;

/// An AA problem instance: m servers with C resource units each, n threads.
struct Instance {
  std::size_t num_servers = 0;
  Resource capacity = 0;
  std::vector<UtilityPtr> threads;

  [[nodiscard]] std::size_t num_threads() const noexcept {
    return threads.size();
  }

  /// Throws std::invalid_argument if the instance is malformed (no servers,
  /// negative capacity, null utilities, or utilities whose domain is smaller
  /// than C — threads must accept any allocation up to a full server).
  void validate() const;
};

/// A solution: thread i runs on server `server[i]` with `alloc[i]` resource.
/// Allocations are real-valued so the random heuristics can hand out
/// fractional amounts; the paper's algorithms always produce integers.
struct Assignment {
  std::vector<std::size_t> server;
  std::vector<double> alloc;

  [[nodiscard]] std::size_t size() const noexcept { return server.size(); }
};

/// sum_i f_i(c_i) for the given assignment (paper Section III objective).
[[nodiscard]] double total_utility(const Instance& instance,
                                   const Assignment& assignment);

/// Checks structural validity: matching sizes, server indices in range,
/// nonnegative allocations, and per-server load <= C (+ tol for the
/// fractional heuristics). Returns an empty string when valid, otherwise a
/// human-readable description of the first violation.
[[nodiscard]] std::string check_assignment(const Instance& instance,
                                           const Assignment& assignment,
                                           double tol = 1e-9);

/// Convenience wrapper that throws std::runtime_error on invalid input.
void require_valid(const Instance& instance, const Assignment& assignment,
                   double tol = 1e-9);

/// Per-server resource usage: sums of allocations by server index.
[[nodiscard]] std::vector<double> server_loads(const Instance& instance,
                                               const Assignment& assignment);

}  // namespace aa::core
