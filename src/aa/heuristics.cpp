#include "aa/heuristics.hpp"

#include <vector>

#include "obs/registry.hpp"
#include "obs/session.hpp"
#include "support/distributions.hpp"

namespace aa::core {

namespace {

/// Groups thread indices by the server they were assigned to.
std::vector<std::vector<std::size_t>> group_by_server(
    const Instance& instance, const std::vector<std::size_t>& server) {
  std::vector<std::vector<std::size_t>> groups(instance.num_servers);
  for (std::size_t i = 0; i < server.size(); ++i) {
    groups[server[i]].push_back(i);
  }
  return groups;
}

/// Equal split of C among each server's threads.
Assignment finish_uniform(const Instance& instance,
                          std::vector<std::size_t> server) {
  Assignment out;
  out.alloc.assign(server.size(), 0.0);
  const auto groups = group_by_server(instance, server);
  for (const auto& group : groups) {
    if (group.empty()) continue;
    const double share = static_cast<double>(instance.capacity) /
                         static_cast<double>(group.size());
    for (const std::size_t i : group) out.alloc[i] = share;
  }
  out.server = std::move(server);
  return out;
}

/// Uniform-simplex split of C among each server's threads.
Assignment finish_random(const Instance& instance,
                         std::vector<std::size_t> server, support::Rng& rng) {
  Assignment out;
  out.alloc.assign(server.size(), 0.0);
  const auto groups = group_by_server(instance, server);
  for (const auto& group : groups) {
    if (group.empty()) continue;
    const std::vector<double> parts = support::simplex_spacings(
        group.size(), static_cast<double>(instance.capacity), rng);
    for (std::size_t k = 0; k < group.size(); ++k) {
      out.alloc[group[k]] = parts[k];
    }
  }
  out.server = std::move(server);
  return out;
}

std::vector<std::size_t> round_robin(const Instance& instance) {
  std::vector<std::size_t> server(instance.num_threads());
  for (std::size_t i = 0; i < server.size(); ++i) {
    server[i] = i % instance.num_servers;
  }
  return server;
}

std::vector<std::size_t> random_servers(const Instance& instance,
                                        support::Rng& rng) {
  std::vector<std::size_t> server(instance.num_threads());
  for (auto& s : server) {
    s = static_cast<std::size_t>(rng.uniform_below(instance.num_servers));
  }
  return server;
}

}  // namespace

Assignment heuristic_uu(const Instance& instance) {
  obs::count(obs::metric::kHeuristicsUuSolves);
  return finish_uniform(instance, round_robin(instance));
}

Assignment heuristic_ur(const Instance& instance, support::Rng& rng) {
  obs::count(obs::metric::kHeuristicsUrSolves);
  return finish_random(instance, round_robin(instance), rng);
}

Assignment heuristic_ru(const Instance& instance, support::Rng& rng) {
  obs::count(obs::metric::kHeuristicsRuSolves);
  return finish_uniform(instance, random_servers(instance, rng));
}

Assignment heuristic_rr(const Instance& instance, support::Rng& rng) {
  obs::count(obs::metric::kHeuristicsRrSolves);
  return finish_random(instance, random_servers(instance, rng), rng);
}

}  // namespace aa::core
