#pragma once

// Co-scheduling baseline (paper Section II, Jiang et al. [13] / Tian et
// al. [14]): partition 2m threads into m PAIRS, one pair per server, so
// that total utility is maximized. Pair values come from the exact
// two-thread single-server allocator, so the only combinatorial choice is
// the pairing itself.
//
// Jiang et al. showed optimal pair co-scheduling reduces to min-cost
// perfect matching; here the same optimum is computed by a subset-pairing
// DP, exact up to n ~ 22 threads (O(2^n * n) time, O(2^n) space), plus a
// greedy matcher for larger inputs.
//
// The AA tie-in (bench/baseline_coschedule): co-scheduling FIXES the group
// size at 2, while AA may co-locate three cheap threads to free a server
// for an expensive one — quantifying the paper's argument that assignment
// and allocation must be solved jointly and without artificial shape
// constraints.

#include <cstddef>

#include "aa/problem.hpp"

namespace aa::core {

struct CoScheduleResult {
  Assignment assignment;  ///< Pairs mapped to servers 0..m-1, allocations
                          ///< from the exact 2-thread allocator.
  double utility = 0.0;
};

/// Exact optimal pairing via subset DP. Requires n == 2 * num_servers and
/// n <= max_threads (default 20); throws std::invalid_argument otherwise.
[[nodiscard]] CoScheduleResult coschedule_exact_pairs(
    const Instance& instance, std::size_t max_threads = 20);

/// Greedy pairing: repeatedly joins the pair with the highest value among
/// all unpaired threads. O(n^3) pair evaluations; same n == 2m contract,
/// no size limit.
[[nodiscard]] CoScheduleResult coschedule_greedy_pairs(
    const Instance& instance);

/// Value of running exactly threads {a, b} on one server (exact 2-thread
/// allocation). Exposed for tests.
[[nodiscard]] double pair_value(const Instance& instance, std::size_t a,
                                std::size_t b);

}  // namespace aa::core
