#include "aa/refine.hpp"

#include <stdexcept>
#include <vector>

#include "aa/algorithm1.hpp"
#include "aa/algorithm2.hpp"
#include "aa/certify.hpp"
#include "alloc/allocator.hpp"
#include "obs/registry.hpp"
#include "obs/session.hpp"

namespace aa::core {

Assignment reoptimize_allocations(const Instance& instance,
                                  const Assignment& placement) {
  const obs::ScopedPhase obs_phase(obs::metric::kPhaseRefineReoptimize);
  if (placement.server.size() != instance.num_threads() ||
      placement.alloc.size() != instance.num_threads()) {
    throw std::invalid_argument("reoptimize: assignment size mismatch");
  }
  Assignment out = placement;
  std::vector<std::vector<std::size_t>> groups(instance.num_servers);
  for (std::size_t i = 0; i < placement.size(); ++i) {
    groups.at(placement.server[i]).push_back(i);
  }
  std::int64_t reoptimized = 0;
  for (const auto& group : groups) {
    if (group.empty()) continue;
    ++reoptimized;
    std::vector<UtilityPtr> members;
    members.reserve(group.size());
    for (const std::size_t i : group) members.push_back(instance.threads[i]);
    const alloc::AllocationResult result = alloc::allocate_greedy(
        members, instance.capacity, instance.capacity);
    for (std::size_t k = 0; k < group.size(); ++k) {
      out.alloc[group[k]] = static_cast<double>(result.amounts[k]);
    }
  }
  obs::count(obs::metric::kRefineServersReoptimized, reoptimized);
  return out;
}

namespace {

SolveResult refined(const Instance& instance, SolveResult raw,
                    std::string_view solver) {
  obs::count(obs::metric::kRefineSolves);
  Assignment better = reoptimize_allocations(instance, raw.assignment);
  const double better_utility = total_utility(instance, better);
  // Guaranteed non-decreasing, but guard against pathological float drift.
  if (better_utility >= raw.utility) {
    raw.assignment = std::move(better);
    raw.utility = better_utility;
  }
  certify_and_record(instance, raw, solver);
  return raw;
}

}  // namespace

SolveResult solve_algorithm2_refined(const Instance& instance) {
  const obs::ScopedPhase obs_phase(obs::metric::kPhaseAlg2SolveRefined);
  return refined(instance, solve_algorithm2(instance), "algorithm2_refined");
}

SolveResult solve_algorithm1_refined(const Instance& instance) {
  const obs::ScopedPhase obs_phase(obs::metric::kPhaseAlg1SolveRefined);
  return refined(instance, solve_algorithm1(instance), "algorithm1_refined");
}

}  // namespace aa::core
