#include "aa/refine.hpp"

#include <stdexcept>
#include <vector>

#include "aa/algorithm1.hpp"
#include "aa/algorithm2.hpp"
#include "alloc/allocator.hpp"

namespace aa::core {

Assignment reoptimize_allocations(const Instance& instance,
                                  const Assignment& placement) {
  if (placement.server.size() != instance.num_threads() ||
      placement.alloc.size() != instance.num_threads()) {
    throw std::invalid_argument("reoptimize: assignment size mismatch");
  }
  Assignment out = placement;
  std::vector<std::vector<std::size_t>> groups(instance.num_servers);
  for (std::size_t i = 0; i < placement.size(); ++i) {
    groups.at(placement.server[i]).push_back(i);
  }
  for (const auto& group : groups) {
    if (group.empty()) continue;
    std::vector<UtilityPtr> members;
    members.reserve(group.size());
    for (const std::size_t i : group) members.push_back(instance.threads[i]);
    const alloc::AllocationResult result = alloc::allocate_greedy(
        members, instance.capacity, instance.capacity);
    for (std::size_t k = 0; k < group.size(); ++k) {
      out.alloc[group[k]] = static_cast<double>(result.amounts[k]);
    }
  }
  return out;
}

namespace {

SolveResult refined(const Instance& instance, SolveResult raw) {
  Assignment better = reoptimize_allocations(instance, raw.assignment);
  const double better_utility = total_utility(instance, better);
  // Guaranteed non-decreasing, but guard against pathological float drift.
  if (better_utility >= raw.utility) {
    raw.assignment = std::move(better);
    raw.utility = better_utility;
  }
  return raw;
}

}  // namespace

SolveResult solve_algorithm2_refined(const Instance& instance) {
  return refined(instance, solve_algorithm2(instance));
}

SolveResult solve_algorithm1_refined(const Instance& instance) {
  return refined(instance, solve_algorithm1(instance));
}

}  // namespace aa::core
