#include "aa/multi_resource.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <sstream>
#include <stdexcept>

#include "alloc/allocator.hpp"
#include "alloc/super_optimal.hpp"
#include "utility/linearized.hpp"

namespace aa::core {

void MultiInstance::validate() const {
  if (num_servers == 0) {
    throw std::invalid_argument("multi instance: need at least one server");
  }
  if (capacities.empty()) {
    throw std::invalid_argument("multi instance: need a resource type");
  }
  for (const Resource c : capacities) {
    if (c < 0) throw std::invalid_argument("multi instance: negative capacity");
  }
  for (std::size_t i = 0; i < threads.size(); ++i) {
    if (threads[i].parts.size() != capacities.size()) {
      throw std::invalid_argument("multi instance: thread " +
                                  std::to_string(i) +
                                  " has wrong number of utility parts");
    }
    for (std::size_t r = 0; r < capacities.size(); ++r) {
      if (threads[i].parts[r] == nullptr) {
        throw std::invalid_argument("multi instance: null utility part");
      }
      if (threads[i].parts[r]->capacity() < capacities[r]) {
        throw std::invalid_argument(
            "multi instance: utility domain smaller than capacity");
      }
    }
  }
}

double total_utility(const MultiInstance& instance,
                     const MultiAssignment& assignment) {
  if (assignment.server.size() != instance.num_threads() ||
      assignment.alloc.size() != instance.num_threads()) {
    throw std::invalid_argument("multi utility: assignment size mismatch");
  }
  double total = 0.0;
  for (std::size_t i = 0; i < instance.num_threads(); ++i) {
    if (assignment.alloc[i].size() != instance.num_types()) {
      throw std::invalid_argument("multi utility: allocation arity mismatch");
    }
    for (std::size_t r = 0; r < instance.num_types(); ++r) {
      total += instance.threads[i].parts[r]->value(assignment.alloc[i][r]);
    }
  }
  return total;
}

std::string check_assignment(const MultiInstance& instance,
                             const MultiAssignment& assignment, double tol) {
  const std::size_t n = instance.num_threads();
  if (assignment.server.size() != n || assignment.alloc.size() != n) {
    return "assignment arrays do not match the thread count";
  }
  std::vector<std::vector<double>> load(
      instance.num_servers, std::vector<double>(instance.num_types(), 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    if (assignment.server[i] >= instance.num_servers) {
      return "thread assigned to nonexistent server";
    }
    if (assignment.alloc[i].size() != instance.num_types()) {
      return "allocation vector arity mismatch";
    }
    for (std::size_t r = 0; r < instance.num_types(); ++r) {
      if (assignment.alloc[i][r] < -tol) return "negative allocation";
      load[assignment.server[i]][r] += assignment.alloc[i][r];
    }
  }
  for (std::size_t j = 0; j < load.size(); ++j) {
    for (std::size_t r = 0; r < instance.num_types(); ++r) {
      if (load[j][r] > static_cast<double>(instance.capacities[r]) + tol) {
        std::ostringstream msg;
        msg << "server " << j << " overloaded on resource " << r;
        return msg.str();
      }
    }
  }
  return {};
}

namespace {

/// Exact per-server, per-type allocation for a fixed placement.
MultiAssignment allocate_within_servers(
    const MultiInstance& instance, const std::vector<std::size_t>& placement) {
  MultiAssignment out;
  out.server = placement;
  out.alloc.assign(instance.num_threads(),
                   std::vector<double>(instance.num_types(), 0.0));
  std::vector<std::vector<std::size_t>> groups(instance.num_servers);
  for (std::size_t i = 0; i < placement.size(); ++i) {
    groups.at(placement[i]).push_back(i);
  }
  for (const auto& group : groups) {
    if (group.empty()) continue;
    for (std::size_t r = 0; r < instance.num_types(); ++r) {
      std::vector<UtilityPtr> parts;
      parts.reserve(group.size());
      for (const std::size_t i : group) {
        parts.push_back(instance.threads[i].parts[r]);
      }
      const alloc::AllocationResult result = alloc::allocate_greedy(
          parts, instance.capacities[r], instance.capacities[r]);
      for (std::size_t k = 0; k < group.size(); ++k) {
        out.alloc[group[k]][r] = static_cast<double>(result.amounts[k]);
      }
    }
  }
  return out;
}

MultiSolveResult finish(const MultiInstance& instance,
                        std::vector<std::size_t> placement,
                        double super_optimal) {
  MultiSolveResult result;
  result.assignment = allocate_within_servers(instance, placement);
  result.utility = total_utility(instance, result.assignment);
  result.super_optimal_utility = super_optimal;
  return result;
}

}  // namespace

MultiSolveResult solve_algorithm2_multi(const MultiInstance& instance) {
  instance.validate();
  const std::size_t n = instance.num_threads();
  const std::size_t m = instance.num_servers;
  const std::size_t types = instance.num_types();

  // Per-type pooled super-optimal allocations (Definition V.1, applied
  // independently per resource thanks to additivity).
  std::vector<std::vector<Resource>> c_hat(n, std::vector<Resource>(types, 0));
  double f_hat = 0.0;
  for (std::size_t r = 0; r < types; ++r) {
    std::vector<UtilityPtr> parts;
    parts.reserve(n);
    for (const MultiUtility& thread : instance.threads) {
      parts.push_back(thread.parts[r]);
    }
    const alloc::SuperOptimalResult so =
        alloc::super_optimal_routed(parts, m, instance.capacities[r]);
    f_hat += so.utility;
    for (std::size_t i = 0; i < n; ++i) c_hat[i][r] = so.c_hat[i];
  }

  // Linearized peak and density summed across types. Density normalizes
  // each type by its capacity so types with different unit scales compare.
  std::vector<double> peak(n, 0.0);
  std::vector<double> density(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double normalized_demand = 0.0;
    for (std::size_t r = 0; r < types; ++r) {
      peak[i] += instance.threads[i].parts[r]->value(
          static_cast<double>(c_hat[i][r]));
      if (instance.capacities[r] > 0) {
        normalized_demand += static_cast<double>(c_hat[i][r]) /
                             static_cast<double>(instance.capacities[r]);
      }
    }
    density[i] = normalized_demand > 0.0 ? peak[i] / normalized_demand : 0.0;
  }

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return peak[a] > peak[b];
                   });
  if (n > m) {
    std::stable_sort(order.begin() + static_cast<std::ptrdiff_t>(m),
                     order.end(), [&](std::size_t a, std::size_t b) {
                       return density[a] > density[b];
                     });
  }

  // Placement rule: the multi-type analogue of "a server giving the
  // greatest utility" — maximize the linearized utility the thread can
  // obtain from each server's remaining capacities, breaking ties by total
  // normalized remaining capacity (the heap rule of Algorithm 2).
  std::vector<std::vector<Resource>> remaining(
      m, std::vector<Resource>(types));
  for (auto& server : remaining) server = instance.capacities;
  std::vector<std::vector<util::Linearized>> linearized(n);
  for (std::size_t i = 0; i < n; ++i) {
    linearized[i].resize(types);
    for (std::size_t r = 0; r < types; ++r) {
      linearized[i][r] = util::Linearized{
          .cap = c_hat[i][r],
          .peak = instance.threads[i].parts[r]->value(
              static_cast<double>(c_hat[i][r]))};
    }
  }
  auto normalized_remaining = [&](std::size_t j) {
    double sum = 0.0;
    for (std::size_t r = 0; r < types; ++r) {
      if (instance.capacities[r] > 0) {
        sum += static_cast<double>(remaining[j][r]) /
               static_cast<double>(instance.capacities[r]);
      }
    }
    return sum;
  };

  std::vector<std::size_t> placement(n, 0);
  for (const std::size_t i : order) {
    std::size_t best = 0;
    double best_value = -1.0;
    double best_tiebreak = -1.0;
    for (std::size_t j = 0; j < m; ++j) {
      double value = 0.0;
      for (std::size_t r = 0; r < types; ++r) {
        value += linearized[i][r].value(
            static_cast<double>(std::min(c_hat[i][r], remaining[j][r])));
      }
      const double tiebreak = normalized_remaining(j);
      if (value > best_value + 1e-12 ||
          (value > best_value - 1e-12 && tiebreak > best_tiebreak)) {
        best_value = value;
        best_tiebreak = tiebreak;
        best = j;
      }
    }
    placement[i] = best;
    for (std::size_t r = 0; r < types; ++r) {
      remaining[best][r] -= std::min(c_hat[i][r], remaining[best][r]);
    }
  }

  return finish(instance, std::move(placement), f_hat);
}

MultiSolveResult solve_round_robin_multi(const MultiInstance& instance) {
  instance.validate();
  std::vector<std::size_t> placement(instance.num_threads());
  for (std::size_t i = 0; i < placement.size(); ++i) {
    placement[i] = i % instance.num_servers;
  }
  // The round-robin baseline gets no super-optimal certificate.
  return finish(instance, std::move(placement), 0.0);
}

namespace {

double exact_multi_recurse(const MultiInstance& instance,
                           std::vector<std::size_t>& placement,
                           std::size_t thread, std::size_t used) {
  if (thread == instance.num_threads()) {
    MultiAssignment assignment =
        allocate_within_servers(instance, placement);
    return total_utility(instance, assignment);
  }
  double best = -1.0;
  const std::size_t limit = std::min(instance.num_servers, used + 1);
  for (std::size_t j = 0; j < limit; ++j) {
    placement[thread] = j;
    best = std::max(best, exact_multi_recurse(instance, placement, thread + 1,
                                              std::max(used, j + 1)));
  }
  return best;
}

}  // namespace

double solve_exact_multi(const MultiInstance& instance,
                         std::size_t max_threads) {
  instance.validate();
  if (instance.num_threads() > max_threads) {
    throw std::invalid_argument(
        "solve_exact_multi: instance too large for exhaustive search");
  }
  if (instance.num_threads() == 0) return 0.0;
  std::vector<std::size_t> placement(instance.num_threads(), 0);
  return exact_multi_recurse(instance, placement, 0, 0);
}

}  // namespace aa::core
