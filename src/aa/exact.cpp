#include "aa/exact.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "alloc/allocator.hpp"
#include "obs/registry.hpp"
#include "obs/session.hpp"

namespace aa::core {

namespace {

class PartitionSearch {
 public:
  explicit PartitionSearch(const Instance& instance) : instance_(instance) {
    const std::size_t n = instance.num_threads();
    current_.assign(n, 0);
    best_.server.assign(n, 0);
    best_.alloc.assign(n, 0.0);
  }

  ExactResult run() {
    recurse(0, 0);
    return {std::move(best_), best_utility_, explored_};
  }

 private:
  void recurse(std::size_t thread, std::size_t used_servers) {
    const std::size_t n = instance_.num_threads();
    if (thread == n) {
      evaluate();
      return;
    }
    // Canonical numbering: a thread may join any already-used server or
    // open the next fresh one (if any remain).
    const std::size_t limit =
        std::min(instance_.num_servers, used_servers + 1);
    for (std::size_t j = 0; j < limit; ++j) {
      current_[thread] = j;
      recurse(thread + 1, std::max(used_servers, j + 1));
    }
  }

  void evaluate() {
    ++explored_;
    std::vector<std::vector<std::size_t>> groups(instance_.num_servers);
    for (std::size_t i = 0; i < current_.size(); ++i) {
      groups[current_[i]].push_back(i);
    }
    double total = 0.0;
    std::vector<double> alloc(current_.size(), 0.0);
    for (const auto& group : groups) {
      if (group.empty()) continue;
      std::vector<UtilityPtr> members;
      members.reserve(group.size());
      for (const std::size_t i : group) members.push_back(instance_.threads[i]);
      const alloc::AllocationResult result = alloc::allocate_greedy(
          members, instance_.capacity, instance_.capacity);
      total += result.total_utility;
      for (std::size_t k = 0; k < group.size(); ++k) {
        alloc[group[k]] = static_cast<double>(result.amounts[k]);
      }
    }
    if (total > best_utility_) {
      best_utility_ = total;
      best_.server = current_;
      best_.alloc = std::move(alloc);
    }
  }

  const Instance& instance_;
  std::vector<std::size_t> current_;
  Assignment best_;
  double best_utility_ = -1.0;
  std::size_t explored_ = 0;
};

}  // namespace

ExactResult solve_exact(const Instance& instance, std::size_t max_threads) {
  const obs::ScopedPhase obs_phase(obs::metric::kPhaseExactSolve);
  obs::count(obs::metric::kExactSolves);
  instance.validate();
  if (instance.num_threads() > max_threads) {
    throw std::invalid_argument(
        "solve_exact: instance too large for exhaustive search");
  }
  ExactResult result = PartitionSearch(instance).run();
  obs::count(obs::metric::kExactPartitionsExplored,
             static_cast<std::int64_t>(result.partitions_explored));
  return result;
}

}  // namespace aa::core
