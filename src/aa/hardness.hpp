#pragma once

// The PARTITION -> AA reduction of Theorem IV.1 (paper Section IV), plus a
// small exact PARTITION oracle used to verify the reduction in tests.
//
// Given numbers c_1..c_n, the gadget builds two servers with capacity
// C = (sum c_i) / 2 and threads f_i(x) = min(x, c_i). The PARTITION instance
// has a solution iff the AA instance's optimal utility equals sum c_i.

#include <cstdint>
#include <span>

#include "aa/problem.hpp"

namespace aa::core {

/// Builds the reduction instance. Throws std::invalid_argument when the sum
/// of values is odd (the reduction needs an integral half-sum; an odd sum is
/// a trivial PARTITION "no" anyway) or any value is nonpositive.
[[nodiscard]] Instance partition_to_aa(std::span<const std::int64_t> values);

/// Target utility sum c_i: an assignment achieving it certifies a partition.
[[nodiscard]] double partition_target(std::span<const std::int64_t> values);

/// Extracts the two index sets from an AA assignment of the gadget; only
/// meaningful when the assignment achieves partition_target().
[[nodiscard]] std::pair<std::vector<std::size_t>, std::vector<std::size_t>>
extract_partition(const Assignment& assignment);

/// Reference subset-sum DP: does a subset of `values` sum to half the total?
/// Pseudo-polynomial O(n * sum); test oracle only.
[[nodiscard]] bool partition_exists(std::span<const std::int64_t> values);

}  // namespace aa::core
