#pragma once

// Online/dynamic extension (paper Section VIII future work): "in practice
// the utility functions of threads may change over time ... we would like to
// integrate online performance measurements into our algorithms to produce
// dynamically optimal assignments."
//
// We model drift as a per-thread multiplicative factor following a bounded
// geometric random walk (factor *= exp(sigma * N(0,1)), clamped), re-scaling
// each base utility every epoch. Three policies are compared:
//
//   kStatic   — solve once with the initial utilities, never adapt.
//   kResolve  — re-run Algorithm 2 from scratch every epoch (maximum
//               utility, maximum migration churn).
//   kSticky   — re-run Algorithm 2 every epoch but keep the previous
//               assignment unless the fresh solution improves utility by
//               more than `hysteresis` (relative); bounds migrations.
//
// Migrations count threads whose server changes between consecutive epochs;
// reallocating on the same server is free (cache partition resizing is
// cheap; moving a thread is not).

#include <cstddef>

#include "aa/problem.hpp"
#include "support/prng.hpp"

namespace aa::core {

enum class OnlinePolicy { kStatic, kResolve, kSticky };

struct OnlineConfig {
  std::size_t epochs = 50;
  double drift_sigma = 0.2;    ///< Std-dev of the log-factor step per epoch.
  double factor_min = 0.2;     ///< Clamp for the drift factor.
  double factor_max = 5.0;
  double hysteresis = 0.05;    ///< kSticky: required relative improvement.
};

struct OnlineResult {
  double total_utility = 0.0;    ///< Sum over epochs of achieved utility.
  double oracle_utility = 0.0;   ///< Sum over epochs of per-epoch Algorithm 2
                                 ///< utility (the kResolve upper reference).
  std::size_t migrations = 0;    ///< Thread moves between consecutive epochs.

  [[nodiscard]] double utility_fraction() const noexcept {
    return oracle_utility > 0.0 ? total_utility / oracle_utility : 1.0;
  }
};

/// Threads whose server differs between two same-shape assignments (the
/// migration metric above). Also used by the allocation service (src/svc)
/// to account churn across incremental re-solves.
[[nodiscard]] std::size_t count_migrations(const Assignment& before,
                                           const Assignment& after);

/// The kSticky acceptance rule: migrate to the fresh solution only when it
/// beats the retained one by more than the relative hysteresis. Shared with
/// the warm-start path of the allocation service.
[[nodiscard]] constexpr bool sticky_should_migrate(
    double fresh_utility, double retained_utility, double hysteresis) noexcept {
  return fresh_utility > retained_utility * (1.0 + hysteresis);
}

/// Simulates `config.epochs` epochs of drift on the given base instance and
/// returns the aggregate metrics for the chosen policy. The drift sequence
/// is a deterministic function of `rng`, so policies can be compared on
/// identical drift by passing equally-seeded generators.
[[nodiscard]] OnlineResult run_online(const Instance& base,
                                      OnlinePolicy policy,
                                      const OnlineConfig& config,
                                      support::Rng& rng);

}  // namespace aa::core
