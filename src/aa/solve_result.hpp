#pragma once

// Shared result type for the paper's approximation algorithms. Both
// Algorithm 1 (Section V) and Algorithm 2 (Section VI) run the same
// pipeline — super-optimal allocation, two-segment linearization, greedy
// assignment — and report the same artifacts.

#include "aa/problem.hpp"
#include "utility/linearized.hpp"

namespace aa::core {

struct SolveResult {
  Assignment assignment;

  /// F = sum f_i(c_i): objective value on the original concave utilities.
  double utility = 0.0;

  /// G = sum g_i(c_i): objective value on the linearized utilities
  /// (Lemma V.15 guarantees G >= alpha * F_hat; F >= G by Lemma V.4).
  double linearized_utility = 0.0;

  /// F_hat: the super-optimal upper bound of Definition V.1
  /// (F* <= F_hat by Lemma V.2, so utility / super_optimal_utility is a
  /// certified lower bound on the achieved approximation factor).
  double super_optimal_utility = 0.0;

  /// The super-optimal allocation c_hat_i the run was based on.
  std::vector<Resource> c_hat;
};

/// alpha = 2(sqrt(2) - 1) > 0.828: the approximation ratio of both
/// algorithms (Theorems V.16 and VI.1).
inline constexpr double kApproximationRatio = 0.8284271247461901;

}  // namespace aa::core
