#include "aa/coschedule.hpp"

#include <bit>
#include <stdexcept>
#include <vector>

#include "alloc/allocator.hpp"

namespace aa::core {

namespace {

void check_shape(const Instance& instance) {
  instance.validate();
  if (instance.num_threads() != 2 * instance.num_servers) {
    throw std::invalid_argument(
        "coschedule: need exactly two threads per server");
  }
}

/// Exact allocation for the pair (a, b) on one server.
alloc::AllocationResult solve_pair(const Instance& instance, std::size_t a,
                                   std::size_t b) {
  const std::vector<UtilityPtr> pair{instance.threads[a],
                                     instance.threads[b]};
  return alloc::allocate_greedy(pair, instance.capacity, instance.capacity);
}

/// Precomputed pair values for all (a, b), a < b.
std::vector<std::vector<double>> pair_values(const Instance& instance) {
  const std::size_t n = instance.num_threads();
  std::vector<std::vector<double>> value(n, std::vector<double>(n, 0.0));
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      value[a][b] = value[b][a] =
          solve_pair(instance, a, b).total_utility;
    }
  }
  return value;
}

/// Materializes a pairing (list of (a, b)) into a full Assignment.
CoScheduleResult materialize(const Instance& instance,
                             const std::vector<std::pair<std::size_t,
                                                         std::size_t>>& pairs) {
  CoScheduleResult result;
  result.assignment.server.assign(instance.num_threads(), 0);
  result.assignment.alloc.assign(instance.num_threads(), 0.0);
  for (std::size_t s = 0; s < pairs.size(); ++s) {
    const auto [a, b] = pairs[s];
    const alloc::AllocationResult allocation = solve_pair(instance, a, b);
    result.assignment.server[a] = s;
    result.assignment.server[b] = s;
    result.assignment.alloc[a] = static_cast<double>(allocation.amounts[0]);
    result.assignment.alloc[b] = static_cast<double>(allocation.amounts[1]);
  }
  result.utility = total_utility(instance, result.assignment);
  return result;
}

}  // namespace

double pair_value(const Instance& instance, std::size_t a, std::size_t b) {
  return solve_pair(instance, a, b).total_utility;
}

CoScheduleResult coschedule_exact_pairs(const Instance& instance,
                                        std::size_t max_threads) {
  check_shape(instance);
  const std::size_t n = instance.num_threads();
  if (n > max_threads || n > 24) {
    throw std::invalid_argument("coschedule: instance too large for DP");
  }
  if (n == 0) return materialize(instance, {});
  const auto values = pair_values(instance);

  // best[mask]: max total value pairing up exactly the threads in mask.
  const std::size_t full = (std::size_t{1} << n) - 1;
  constexpr double kUnset = -1.0;
  std::vector<double> best(full + 1, kUnset);
  std::vector<std::pair<std::uint8_t, std::uint8_t>> choice(full + 1);
  best[0] = 0.0;
  for (std::size_t mask = 0; mask <= full; ++mask) {
    if (best[mask] == kUnset || mask == full) continue;
    // Pair the lowest unset thread with every other unset thread; fixing
    // the lowest avoids revisiting permutations of the same pairing.
    const auto a = static_cast<std::size_t>(
        std::countr_zero(~mask));
    for (std::size_t b = a + 1; b < n; ++b) {
      if ((mask >> b) & 1u) continue;
      const std::size_t next =
          mask | (std::size_t{1} << a) | (std::size_t{1} << b);
      const double candidate = best[mask] + values[a][b];
      if (candidate > best[next]) {
        best[next] = candidate;
        choice[next] = {static_cast<std::uint8_t>(a),
                        static_cast<std::uint8_t>(b)};
      }
    }
  }

  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  std::size_t mask = full;
  while (mask != 0) {
    const auto [a, b] = choice[mask];
    pairs.emplace_back(a, b);
    mask &= ~((std::size_t{1} << a) | (std::size_t{1} << b));
  }
  return materialize(instance, pairs);
}

CoScheduleResult coschedule_greedy_pairs(const Instance& instance) {
  check_shape(instance);
  const std::size_t n = instance.num_threads();
  const auto values = pair_values(instance);
  std::vector<bool> paired(n, false);
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (std::size_t round = 0; round < instance.num_servers; ++round) {
    double best_value = -1.0;
    std::size_t best_a = 0;
    std::size_t best_b = 0;
    for (std::size_t a = 0; a < n; ++a) {
      if (paired[a]) continue;
      for (std::size_t b = a + 1; b < n; ++b) {
        if (paired[b]) continue;
        if (values[a][b] > best_value) {
          best_value = values[a][b];
          best_a = a;
          best_b = b;
        }
      }
    }
    paired[best_a] = true;
    paired[best_b] = true;
    pairs.emplace_back(best_a, best_b);
  }
  return materialize(instance, pairs);
}

}  // namespace aa::core
