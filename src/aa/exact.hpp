#pragma once

// Exact AA solver for small instances, used to validate the approximation
// guarantee end-to-end (F >= alpha * F*, Theorems V.16 / VI.1).
//
// Enumerates set partitions of the threads into at most m groups with
// first-use canonical numbering (servers are homogeneous, so permuting
// nonempty groups is symmetric), then solves each server's allocation
// exactly with the concave greedy allocator. Exponential — intended for
// n <~ 10 in tests and benches only.

#include <cstddef>

#include "aa/problem.hpp"

namespace aa::core {

struct ExactResult {
  Assignment assignment;
  double utility = 0.0;
  std::size_t partitions_explored = 0;
};

/// Throws std::invalid_argument when the search space is clearly infeasible
/// (n > max_threads, default 12).
[[nodiscard]] ExactResult solve_exact(const Instance& instance,
                                      std::size_t max_threads = 12);

}  // namespace aa::core
