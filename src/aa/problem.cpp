#include "aa/problem.hpp"

#include <sstream>
#include <stdexcept>

namespace aa::core {

void Instance::validate() const {
  if (num_servers == 0) {
    throw std::invalid_argument("instance: need at least one server");
  }
  if (capacity < 0) {
    throw std::invalid_argument("instance: negative capacity");
  }
  for (std::size_t i = 0; i < threads.size(); ++i) {
    if (threads[i] == nullptr) {
      throw std::invalid_argument("instance: null utility for thread " +
                                  std::to_string(i));
    }
    if (threads[i]->capacity() < capacity) {
      throw std::invalid_argument(
          "instance: thread " + std::to_string(i) +
          " utility domain smaller than server capacity");
    }
  }
}

double total_utility(const Instance& instance, const Assignment& assignment) {
  if (assignment.server.size() != instance.num_threads() ||
      assignment.alloc.size() != instance.num_threads()) {
    throw std::invalid_argument("total_utility: assignment size mismatch");
  }
  double total = 0.0;
  for (std::size_t i = 0; i < instance.num_threads(); ++i) {
    total += instance.threads[i]->value(assignment.alloc[i]);
  }
  return total;
}

std::string check_assignment(const Instance& instance,
                             const Assignment& assignment, double tol) {
  const std::size_t n = instance.num_threads();
  if (assignment.server.size() != n || assignment.alloc.size() != n) {
    return "assignment arrays do not match the thread count";
  }
  std::vector<double> load(instance.num_servers, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (assignment.server[i] >= instance.num_servers) {
      std::ostringstream msg;
      msg << "thread " << i << " assigned to nonexistent server "
          << assignment.server[i];
      return msg.str();
    }
    if (assignment.alloc[i] < -tol) {
      std::ostringstream msg;
      msg << "thread " << i << " has negative allocation "
          << assignment.alloc[i];
      return msg.str();
    }
    load[assignment.server[i]] += assignment.alloc[i];
  }
  for (std::size_t j = 0; j < load.size(); ++j) {
    if (load[j] > static_cast<double>(instance.capacity) + tol) {
      std::ostringstream msg;
      msg << "server " << j << " overloaded: " << load[j] << " > "
          << instance.capacity;
      return msg.str();
    }
  }
  return {};
}

void require_valid(const Instance& instance, const Assignment& assignment,
                   double tol) {
  const std::string error = check_assignment(instance, assignment, tol);
  if (!error.empty()) {
    throw std::runtime_error("invalid assignment: " + error);
  }
}

std::vector<double> server_loads(const Instance& instance,
                                 const Assignment& assignment) {
  std::vector<double> load(instance.num_servers, 0.0);
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    load.at(assignment.server[i]) += assignment.alloc[i];
  }
  return load;
}

}  // namespace aa::core
