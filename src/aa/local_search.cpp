#include "aa/local_search.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "alloc/allocator.hpp"

namespace aa::core {

namespace {

/// Mutable per-server grouping with cached exact allocation values.
class ServerState {
 public:
  ServerState(const Instance& instance, const Assignment& start)
      : instance_(instance),
        members_(instance.num_servers),
        value_(instance.num_servers, 0.0) {
    if (start.server.size() != instance.num_threads()) {
      throw std::invalid_argument("local search: assignment size mismatch");
    }
    for (std::size_t i = 0; i < start.server.size(); ++i) {
      members_.at(start.server[i]).push_back(i);
    }
    for (std::size_t j = 0; j < members_.size(); ++j) {
      value_[j] = evaluate(members_[j]);
    }
  }

  [[nodiscard]] double total() const {
    double sum = 0.0;
    for (const double v : value_) sum += v;
    return sum;
  }

  [[nodiscard]] std::size_t server_of(std::size_t thread) const {
    for (std::size_t j = 0; j < members_.size(); ++j) {
      if (std::find(members_[j].begin(), members_[j].end(), thread) !=
          members_[j].end()) {
        return j;
      }
    }
    throw std::logic_error("local search: thread not placed");
  }

  /// Gain of moving `thread` from its server to `target` (< 0 if harmful).
  [[nodiscard]] double move_gain(std::size_t thread, std::size_t source,
                                 std::size_t target) const {
    if (source == target) return 0.0;
    std::vector<std::size_t> from = members_[source];
    std::erase(from, thread);
    std::vector<std::size_t> to = members_[target];
    to.push_back(thread);
    return evaluate(from) + evaluate(to) - value_[source] - value_[target];
  }

  void apply_move(std::size_t thread, std::size_t source, std::size_t target) {
    std::erase(members_[source], thread);
    members_[target].push_back(thread);
    value_[source] = evaluate(members_[source]);
    value_[target] = evaluate(members_[target]);
  }

  /// Gain of swapping the servers of threads a (on sa) and b (on sb).
  [[nodiscard]] double swap_gain(std::size_t a, std::size_t sa, std::size_t b,
                                 std::size_t sb) const {
    if (sa == sb) return 0.0;
    std::vector<std::size_t> ga = members_[sa];
    std::erase(ga, a);
    ga.push_back(b);
    std::vector<std::size_t> gb = members_[sb];
    std::erase(gb, b);
    gb.push_back(a);
    return evaluate(ga) + evaluate(gb) - value_[sa] - value_[sb];
  }

  void apply_swap(std::size_t a, std::size_t sa, std::size_t b,
                  std::size_t sb) {
    std::erase(members_[sa], a);
    std::erase(members_[sb], b);
    members_[sa].push_back(b);
    members_[sb].push_back(a);
    value_[sa] = evaluate(members_[sa]);
    value_[sb] = evaluate(members_[sb]);
  }

  /// Emits the final assignment with exact per-server allocations.
  [[nodiscard]] Assignment materialize() const {
    Assignment out;
    out.server.assign(instance_.num_threads(), 0);
    out.alloc.assign(instance_.num_threads(), 0.0);
    for (std::size_t j = 0; j < members_.size(); ++j) {
      if (members_[j].empty()) continue;
      std::vector<UtilityPtr> utils;
      utils.reserve(members_[j].size());
      for (const std::size_t i : members_[j]) {
        utils.push_back(instance_.threads[i]);
      }
      const alloc::AllocationResult result = alloc::allocate_greedy(
          utils, instance_.capacity, instance_.capacity);
      for (std::size_t k = 0; k < members_[j].size(); ++k) {
        out.server[members_[j][k]] = j;
        out.alloc[members_[j][k]] = static_cast<double>(result.amounts[k]);
      }
    }
    return out;
  }

 private:
  [[nodiscard]] double evaluate(const std::vector<std::size_t>& group) const {
    if (group.empty()) return 0.0;
    std::vector<UtilityPtr> utils;
    utils.reserve(group.size());
    for (const std::size_t i : group) utils.push_back(instance_.threads[i]);
    return alloc::allocate_greedy(utils, instance_.capacity,
                                  instance_.capacity)
        .total_utility;
  }

  const Instance& instance_;
  std::vector<std::vector<std::size_t>> members_;
  std::vector<double> value_;
};

}  // namespace

LocalSearchResult improve_local_search(const Instance& instance,
                                       const Assignment& start,
                                       const LocalSearchOptions& options) {
  instance.validate();
  ServerState state(instance, start);
  // Track placements locally to avoid ServerState::server_of scans.
  std::vector<std::size_t> placement = start.server;

  LocalSearchResult result;
  const std::size_t n = instance.num_threads();
  const std::size_t m = instance.num_servers;

  for (std::size_t round = 0; round < options.max_rounds; ++round) {
    bool improved = false;

    if (options.enable_moves) {
      for (std::size_t i = 0; i < n; ++i) {
        // First-improvement over targets; re-scan after acceptance.
        double best_gain = options.min_gain;
        std::size_t best_target = m;
        for (std::size_t j = 0; j < m; ++j) {
          if (j == placement[i]) continue;
          const double gain = state.move_gain(i, placement[i], j);
          if (gain > best_gain) {
            best_gain = gain;
            best_target = j;
          }
        }
        if (best_target != m) {
          state.apply_move(i, placement[i], best_target);
          placement[i] = best_target;
          ++result.moves_applied;
          improved = true;
        }
      }
    }

    if (options.enable_swaps) {
      for (std::size_t a = 0; a < n; ++a) {
        for (std::size_t b = a + 1; b < n; ++b) {
          if (placement[a] == placement[b]) continue;
          const double gain =
              state.swap_gain(a, placement[a], b, placement[b]);
          if (gain > options.min_gain) {
            state.apply_swap(a, placement[a], b, placement[b]);
            std::swap(placement[a], placement[b]);
            ++result.swaps_applied;
            improved = true;
          }
        }
      }
    }

    ++result.rounds;
    if (!improved) break;
  }

  result.assignment = state.materialize();
  result.utility = total_utility(instance, result.assignment);
  return result;
}

}  // namespace aa::core
