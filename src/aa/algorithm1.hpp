#pragma once

// Algorithm 1 (paper Section V-B): the O(m n^2 + n (log mC)^2)
// alpha = 2(sqrt(2)-1)-approximation.
//
// Each round, over the unassigned threads R:
//   * U = set of (thread, server) pairs where the server's remaining
//     capacity covers the thread's super-optimal allocation c_hat_i;
//   * if U is nonempty, pick the thread in U with the largest linearized
//     peak g_i(c_hat_i) ("full" threads, set D in the analysis);
//   * otherwise pick the (thread, server) pair maximizing g_i(C_j), the
//     utility obtainable from the server's leftover capacity ("unfull"
//     threads, set E);
//   * assign the chosen thread to a server giving it the greatest utility
//     with allocation min(c_hat_i, C_j).
//
// The shipped assign_algorithm1 replaces the paper's O(m n^2) rescans with
// incremental candidate selection (a peak-sorted cursor for the full picks,
// one memoized two-segment evaluation per thread for the unfull picks) and
// runs the rounds in O(n log n + (n + m) m) while producing bit-identical
// assignments — the pair-selection tie-breaks of the literal pseudocode are
// replayed exactly (see the invariant notes in algorithm1.cpp, and
// docs/BENCHMARKS.md for the measured speedup).

#include <span>

#include "aa/solve_result.hpp"

namespace aa::core {

/// Runs the full pipeline: super-optimal allocation (bisection), Equation-1
/// linearization, then the greedy rounds above.
[[nodiscard]] SolveResult solve_algorithm1(const Instance& instance);

/// Assignment phase only, for callers that already computed the
/// super-optimal allocation (benches isolate phases this way).
[[nodiscard]] Assignment assign_algorithm1(
    const Instance& instance, std::span<const util::Linearized> linearized);

/// The literal O(m n^2) transcription of the paper's pseudocode: rescans
/// every (thread, server) pair each round. Kept as the differential-testing
/// oracle for the incremental implementation above
/// (tests/algorithm1_equivalence_test.cpp pins bit-identical output) and as
/// the `alg1_reference` baseline in tools/aa_bench. Records no obs metrics,
/// so oracle runs never pollute a measurement session.
[[nodiscard]] Assignment assign_algorithm1_reference(
    const Instance& instance, std::span<const util::Linearized> linearized);

}  // namespace aa::core
