#pragma once

// The four baseline heuristics from the paper's evaluation (Section VII):
//
//   UU (uniform-uniform): round-robin assignment; each server splits its
//       capacity equally among its threads.
//   UR (uniform-random):  round-robin assignment; each server's capacity is
//       split uniformly at random (simplex spacings) among its threads.
//   RU (random-uniform):  uniformly random server per thread; equal split.
//   RR (random-random):   random server; random split.
//
// Random splits use the full capacity C (utilities are nondecreasing, so
// leaving resource idle is never better), sampled uniformly from the
// simplex. Splits may be fractional; Assignment stores doubles for exactly
// this reason.

#include "aa/problem.hpp"
#include "support/prng.hpp"

namespace aa::core {

[[nodiscard]] Assignment heuristic_uu(const Instance& instance);
[[nodiscard]] Assignment heuristic_ur(const Instance& instance,
                                      support::Rng& rng);
[[nodiscard]] Assignment heuristic_ru(const Instance& instance,
                                      support::Rng& rng);
[[nodiscard]] Assignment heuristic_rr(const Instance& instance,
                                      support::Rng& rng);

}  // namespace aa::core
