#include "aa/hardness.hpp"

#include <memory>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace aa::core {

namespace {

std::int64_t checked_sum(std::span<const std::int64_t> values) {
  std::int64_t sum = 0;
  for (const std::int64_t v : values) {
    if (v <= 0) {
      throw std::invalid_argument("partition gadget: values must be positive");
    }
    sum += v;
  }
  return sum;
}

}  // namespace

Instance partition_to_aa(std::span<const std::int64_t> values) {
  const std::int64_t sum = checked_sum(values);
  if (sum % 2 != 0) {
    throw std::invalid_argument(
        "partition gadget: odd sum (trivially unsolvable)");
  }
  Instance instance;
  instance.num_servers = 2;
  instance.capacity = sum / 2;
  instance.threads.reserve(values.size());
  for (const std::int64_t v : values) {
    instance.threads.push_back(std::make_shared<util::CappedLinearUtility>(
        /*slope=*/1.0, /*cap=*/static_cast<double>(v),
        /*capacity=*/instance.capacity));
  }
  return instance;
}

double partition_target(std::span<const std::int64_t> values) {
  return static_cast<double>(checked_sum(values));
}

std::pair<std::vector<std::size_t>, std::vector<std::size_t>>
extract_partition(const Assignment& assignment) {
  std::pair<std::vector<std::size_t>, std::vector<std::size_t>> sets;
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    if (assignment.server[i] == 0) {
      sets.first.push_back(i);
    } else {
      sets.second.push_back(i);
    }
  }
  return sets;
}

bool partition_exists(std::span<const std::int64_t> values) {
  const std::int64_t sum = checked_sum(values);
  if (sum % 2 != 0) return false;
  const auto half = static_cast<std::size_t>(sum / 2);
  std::vector<char> reachable(half + 1, 0);
  reachable[0] = 1;
  for (const std::int64_t v : values) {
    const auto step = static_cast<std::size_t>(v);
    for (std::size_t s = half; s + 1 > step; --s) {
      if (reachable[s - step]) reachable[s] |= 1;
    }
  }
  return reachable[half] != 0;
}

}  // namespace aa::core
