#pragma once

// Heterogeneous-capacity extension (paper Section VIII future work).
//
// Servers may have different capacities C_1..C_m. The paper's Algorithm 2
// generalizes directly: the super-optimal pool becomes sum_j C_j with each
// thread capped at max_j C_j, and the max-heap already assigns to the
// largest remaining capacity. The 0.828 guarantee is NOT claimed here — the
// analysis (Lemmas V.5-V.8) leans on homogeneity — so this module is an
// engineering extension whose quality is measured empirically against the
// exact solver (bench/ext_heterogeneous).

#include <span>

#include "aa/problem.hpp"
#include "aa/solve_result.hpp"
#include "support/prng.hpp"

namespace aa::core {

/// AA instance with per-server capacities.
struct HeteroInstance {
  std::vector<Resource> capacities;  ///< One entry per server.
  std::vector<UtilityPtr> threads;

  [[nodiscard]] std::size_t num_servers() const noexcept {
    return capacities.size();
  }
  [[nodiscard]] std::size_t num_threads() const noexcept {
    return threads.size();
  }
  [[nodiscard]] Resource max_capacity() const;
  [[nodiscard]] Resource total_capacity() const;

  /// Same contract as Instance::validate(); thread domains must cover the
  /// largest server.
  void validate() const;
};

[[nodiscard]] double total_utility(const HeteroInstance& instance,
                                   const Assignment& assignment);

[[nodiscard]] std::string check_assignment(const HeteroInstance& instance,
                                           const Assignment& assignment,
                                           double tol = 1e-9);

/// Algorithm 2 generalized to heterogeneous capacities (pipeline: pooled
/// super-optimal -> linearize -> peak/density sort -> max-remaining heap).
[[nodiscard]] SolveResult solve_algorithm2_hetero(
    const HeteroInstance& instance);

/// Round-robin + equal split baseline (UU analogue).
[[nodiscard]] Assignment heuristic_uu_hetero(const HeteroInstance& instance);

/// Exhaustive reference for small instances (same canonical-partition
/// search as solve_exact, but capacities break server symmetry, so all
/// m^n labelings are explored). n <= max_threads (default 10).
[[nodiscard]] double solve_exact_hetero(const HeteroInstance& instance,
                                        std::size_t max_threads = 10);

}  // namespace aa::core
