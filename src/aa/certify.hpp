#pragma once

// Bridges the solver types to the generic certificate checker in
// obs/certificate.hpp: builds a CertificateInput from an (Instance,
// SolveResult) pair — structural validation, per-server loads, the pooled
// c_hat budget and (optionally) the O(n C) concavity sweep — and checks the
// full chain F >= G >= alpha * F_hat >= alpha * F* (see certificate.hpp).
//
// The approximation solvers call certify_and_record() on every solve; it
// returns immediately when no obs::Session is installed, so uninstrumented
// runs pay nothing.

#include <string_view>

#include "aa/problem.hpp"
#include "aa/solve_result.hpp"
#include "obs/certificate.hpp"

namespace aa::core {

struct CertifyOptions {
  /// Sweep every utility with util::is_valid_on_grid (O(n C)). On by
  /// default for explicit calls; the per-solve auto-record skips it — the
  /// generators and Instance::validate enforce the precondition upstream.
  bool check_concavity = true;
  double rel_tol = 1e-7;
};

/// Builds the input and runs obs::check_certificate. Pure; never records.
[[nodiscard]] obs::Certificate certify(const Instance& instance,
                                       const SolveResult& result,
                                       std::string_view solver,
                                       const CertifyOptions& options = {});

/// When an obs::Session is installed: certify (without the concavity
/// sweep), store the certificate on the session and bump the
/// certificate/checks + certificate/failures counters. No-op otherwise.
void certify_and_record(const Instance& instance, const SolveResult& result,
                        std::string_view solver);

}  // namespace aa::core
