#pragma once

// Algorithm 2 (paper Section VI): the faster O(n (log mC)^2)
// alpha = 2(sqrt(2)-1)-approximation.
//
//   1. Sort threads in nonincreasing order of the linearized peak
//      g_i(c_hat_i).
//   2. Re-sort threads m+1..n of that order in nonincreasing order of the
//      ramp density g_i(c_hat_i) / c_hat_i. (The paper's Section VI-A prose
//      says "nondecreasing", contradicting its own pseudocode and Lemma
//      V.10, which needs higher-density threads to receive more resource;
//      since servers only lose capacity over time, higher density must be
//      assigned earlier — nonincreasing. See DESIGN.md.)
//   3. Keep server remaining capacities in a max-heap; give each thread in
//      order min(c_hat_i, C_j) on the fullest server.

#include <span>

#include "aa/solve_result.hpp"

namespace aa::core {

/// Runs the full pipeline: super-optimal allocation (bisection), Equation-1
/// linearization, then the sorted heap assignment.
[[nodiscard]] SolveResult solve_algorithm2(const Instance& instance);

/// Assignment phase only (precomputed linearization).
[[nodiscard]] Assignment assign_algorithm2(
    const Instance& instance, std::span<const util::Linearized> linearized);

/// Ablation hook: the same assignment loop with configurable sorting, used
/// by bench/ablation_design to quantify each design choice.
struct Algorithm2Options {
  bool sort_by_peak = true;      ///< Step 1 (off = keep input order).
  bool resort_tail_by_density = true;  ///< Step 2.
  bool density_nonincreasing = true;   ///< false reproduces the paper's typo.
};

[[nodiscard]] Assignment assign_algorithm2_with_options(
    const Instance& instance, std::span<const util::Linearized> linearized,
    const Algorithm2Options& options);

}  // namespace aa::core
