#pragma once

// Cycle-by-access set-associative cache simulator with way partitioning.
//
// The stack-distance model (stack_distance.hpp) predicts misses for a
// fully-associative LRU cache; real LLCs are set-associative and enforce
// partitions per way (Qureshi & Patt [4], Intel CAT). This simulator plays
// a trace against a concrete set-associative LRU cache whose ways are
// divided among threads, giving ground truth to validate both the
// analytical model and the end-to-end AA placement (tests and
// bench/domain_cachesim compare the two).

#include <cstdint>
#include <vector>

#include "cachesim/trace.hpp"

namespace aa::cachesim {

struct SetAssocConfig {
  std::uint64_t num_sets = 64;   ///< Power of two.
  std::uint64_t num_ways = 16;   ///< Associativity.
};

/// A single-thread view of a way-partitioned set-associative LRU cache:
/// the thread owns `owned_ways` ways in every set.
class SetAssocCache {
 public:
  /// Throws std::invalid_argument unless 0 < owned_ways <= num_ways and
  /// num_sets is a power of two. owned_ways == 0 is allowed and models a
  /// thread with no LLC share (every access misses).
  SetAssocCache(const SetAssocConfig& config, std::uint64_t owned_ways);

  /// Plays one access; returns true on hit. LRU within the owned ways.
  bool access(std::uint64_t line);

  /// Plays a whole trace; returns the number of misses.
  [[nodiscard]] std::uint64_t run(const Trace& trace);

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }

  void reset();

 private:
  SetAssocConfig config_;
  std::uint64_t owned_ways_;
  // Per set: owned_ways_ slots of (tag, last-use stamp); empty = ~0.
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint64_t> stamps_;
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Measured miss counts of `trace` for every way share 0..num_ways
/// (index = owned ways). The set-associative analogue of
/// StackDistanceProfile::misses_at.
[[nodiscard]] std::vector<std::uint64_t> measure_miss_curve(
    const Trace& trace, const SetAssocConfig& config);

}  // namespace aa::cachesim
