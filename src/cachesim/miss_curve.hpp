#pragma once

// Miss-rate curves and their conversion into AA utility functions.
//
// A thread's miss curve gives its miss count as a function of the number of
// LLC ways it owns (way-granular partitioning, as in Qureshi & Patt's
// utility-based cache partitioning [4]). Throughput follows a standard
// latency model:
//
//   cycles(w) = accesses * hit_cost + misses(w) * miss_penalty
//   throughput(w) = instructions_per_access * accesses / cycles(w)
//
// Miss curves are nonincreasing, so throughput is nondecreasing; it is not
// guaranteed concave (real miss curves have plateaus and cliffs), so the AA
// model uses the PAV-projected concave version while the machine simulator
// measures achieved throughput with the raw curve. The gap between the two
// is reported by the cachesim tests and the domain bench.

#include <cstdint>
#include <vector>

#include "cachesim/stack_distance.hpp"
#include "utility/utility_function.hpp"

namespace aa::cachesim {

struct CacheGeometry {
  std::uint64_t total_ways = 16;
  std::uint64_t lines_per_way = 1024;  ///< e.g. 64 KiB way / 64 B lines.
};

/// Per-thread performance model parameters.
struct PerfModel {
  double hit_cost = 1.0;          ///< Cycles per (hitting) access.
  double miss_penalty = 40.0;     ///< Extra cycles per LLC miss.
  double instructions_per_access = 4.0;
};

/// A thread's measured behaviour: misses as a function of owned ways
/// (index 0 = no ways = every access misses the LLC).
struct MissCurve {
  std::vector<std::uint64_t> misses_by_ways;  ///< Size total_ways + 1.
  std::uint64_t accesses = 0;

  [[nodiscard]] double miss_ratio(std::uint64_t ways) const;

  /// Raw (not necessarily concave) throughput at `ways`.
  [[nodiscard]] double throughput(std::uint64_t ways,
                                  const PerfModel& model) const;
};

/// Builds the miss curve of a trace for the given geometry by evaluating the
/// stack-distance profile at each way count.
[[nodiscard]] MissCurve build_miss_curve(const StackDistanceProfile& profile,
                                         const CacheGeometry& geometry);

/// Converts a miss curve into a concave AA utility on [0, total_ways]
/// (resource unit = one way) via PAV projection of the throughput samples.
[[nodiscard]] util::UtilityPtr utility_from_miss_curve(
    const MissCurve& curve, const PerfModel& model);

}  // namespace aa::cachesim
