#pragma once

// Multi-socket machine model tying the cache simulator to the AA problem
// (paper Section I's multicore scenario): each socket is an AA "server"
// whose shared LLC contributes `total_ways` resource units; threads are
// placed on sockets and given way-partitions.

#include <cstdint>
#include <vector>

#include "aa/problem.hpp"
#include "cachesim/miss_curve.hpp"

namespace aa::cachesim {

/// One thread's workload characterization.
struct ThreadProfile {
  MissCurve curve;          ///< Raw measured behaviour.
  PerfModel model;          ///< Latency/throughput parameters.
  util::UtilityPtr utility; ///< Concave AA model of throughput(ways).
};

/// Profiles a trace end-to-end: stack distances -> miss curve -> utility.
[[nodiscard]] ThreadProfile profile_trace(const Trace& trace,
                                          const CacheGeometry& geometry,
                                          const PerfModel& model);

struct Machine {
  std::size_t num_sockets = 2;
  CacheGeometry geometry;
};

/// Builds the AA instance for scheduling `profiles` on `machine`
/// (capacity = ways per socket; utilities = concave throughput models).
[[nodiscard]] core::Instance build_instance(
    const Machine& machine, const std::vector<ThreadProfile>& profiles);

/// Aggregate achieved throughput of an assignment, measured with the RAW
/// miss curves (way allocations are rounded down to whole ways — partial
/// ways cannot be granted by hardware).
[[nodiscard]] double measure_throughput(
    const std::vector<ThreadProfile>& profiles, const core::Assignment& assignment);

}  // namespace aa::cachesim
