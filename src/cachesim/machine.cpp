#include "cachesim/machine.hpp"

#include <cmath>
#include <stdexcept>

namespace aa::cachesim {

ThreadProfile profile_trace(const Trace& trace, const CacheGeometry& geometry,
                            const PerfModel& model) {
  ThreadProfile profile;
  profile.curve =
      build_miss_curve(compute_stack_distances(trace), geometry);
  profile.model = model;
  profile.utility = utility_from_miss_curve(profile.curve, model);
  return profile;
}

core::Instance build_instance(const Machine& machine,
                              const std::vector<ThreadProfile>& profiles) {
  if (machine.num_sockets == 0) {
    throw std::invalid_argument("machine: need at least one socket");
  }
  core::Instance instance;
  instance.num_servers = machine.num_sockets;
  instance.capacity = static_cast<util::Resource>(machine.geometry.total_ways);
  instance.threads.reserve(profiles.size());
  for (const ThreadProfile& p : profiles) {
    if (p.utility == nullptr) {
      throw std::invalid_argument("machine: profile missing utility");
    }
    instance.threads.push_back(p.utility);
  }
  instance.validate();
  return instance;
}

double measure_throughput(const std::vector<ThreadProfile>& profiles,
                          const core::Assignment& assignment) {
  if (assignment.size() != profiles.size()) {
    throw std::invalid_argument("measure: assignment size mismatch");
  }
  double total = 0.0;
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const auto ways = static_cast<std::uint64_t>(
        std::floor(std::max(0.0, assignment.alloc[i])));
    total += profiles[i].curve.throughput(ways, profiles[i].model);
  }
  return total;
}

}  // namespace aa::cachesim
