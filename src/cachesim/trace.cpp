#include "cachesim/trace.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>
#include <stdexcept>

namespace aa::cachesim {

TraceConfig TraceConfig::cache_friendly(std::uint64_t hot_lines,
                                        std::size_t length) {
  return {.pools = {{hot_lines, 1.0}}, .length = length};
}

TraceConfig TraceConfig::streaming(std::uint64_t footprint,
                                   std::size_t length) {
  // A huge uniformly-accessed pool: reuse distances mostly exceed any
  // realistic cache, so the miss curve stays flat and high.
  return {.pools = {{footprint, 1.0}}, .length = length};
}

TraceConfig TraceConfig::mixed(std::uint64_t hot_lines,
                               std::uint64_t warm_lines,
                               std::uint64_t cold_lines, std::size_t length) {
  return {.pools = {{hot_lines, 0.6}, {warm_lines, 0.3}, {cold_lines, 0.1}},
          .length = length};
}

Trace generate_trace(const TraceConfig& config, support::Rng& rng) {
  if (config.pools.empty()) {
    throw std::invalid_argument("trace: need at least one pool");
  }
  double total_weight = 0.0;
  for (const LocalityPool& pool : config.pools) {
    if (pool.lines == 0) throw std::invalid_argument("trace: empty pool");
    if (pool.weight < 0.0) {
      throw std::invalid_argument("trace: negative weight");
    }
    total_weight += pool.weight;
  }
  if (total_weight <= 0.0) {
    throw std::invalid_argument("trace: zero total weight");
  }

  // Disjoint base addresses per pool.
  std::vector<std::uint64_t> base(config.pools.size(), 0);
  for (std::size_t p = 1; p < config.pools.size(); ++p) {
    base[p] = base[p - 1] + config.pools[p - 1].lines;
  }

  Trace trace;
  trace.reserve(config.length);
  for (std::size_t t = 0; t < config.length; ++t) {
    double pick = rng.uniform01() * total_weight;
    std::size_t p = 0;
    while (p + 1 < config.pools.size() && pick >= config.pools[p].weight) {
      pick -= config.pools[p].weight;
      ++p;
    }
    trace.push_back(base[p] + rng.uniform_below(config.pools[p].lines));
  }
  return trace;
}

Trace generate_zipf_trace(const ZipfTraceConfig& config,
                          support::Rng& rng) {
  if (config.lines == 0) {
    throw std::invalid_argument("zipf trace: need at least one line");
  }
  if (config.exponent <= 0.0) {
    throw std::invalid_argument("zipf trace: exponent must be positive");
  }
  // Cumulative popularity table; binary search per access.
  std::vector<double> cdf(config.lines);
  double total = 0.0;
  for (std::uint64_t i = 0; i < config.lines; ++i) {
    total += std::pow(static_cast<double>(i + 1), -config.exponent);
    cdf[i] = total;
  }
  Trace trace;
  trace.reserve(config.length);
  for (std::size_t t = 0; t < config.length; ++t) {
    const double pick = rng.uniform01() * total;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), pick);
    trace.push_back(static_cast<std::uint64_t>(it - cdf.begin()));
  }
  return trace;
}

Trace sequential_trace(std::uint64_t lines) {
  Trace trace(lines);
  std::iota(trace.begin(), trace.end(), std::uint64_t{0});
  return trace;
}

}  // namespace aa::cachesim
