#include "cachesim/stack_distance.hpp"

#include <algorithm>
#include <list>
#include <unordered_map>

#include "support/fenwick.hpp"

namespace aa::cachesim {

std::uint64_t StackDistanceProfile::misses_at(
    std::uint64_t lines) const noexcept {
  std::uint64_t misses = cold_accesses;
  for (std::uint64_t d = lines + 1; d < histogram.size(); ++d) {
    misses += histogram[d];
  }
  return misses;
}

StackDistanceProfile compute_stack_distances(const Trace& trace) {
  StackDistanceProfile profile;
  profile.total_accesses = trace.size();
  if (trace.empty()) return profile;

  // A mark at timestamp t means "some line's most recent access was at t".
  // The stack distance of a reuse at time `now` of a line last seen at
  // `last` is the number of marks in (last, now), plus one for the line
  // itself.
  support::FenwickTree marks(trace.size());
  std::unordered_map<std::uint64_t, std::size_t> last_access;
  last_access.reserve(trace.size());

  std::vector<std::uint64_t> distances;
  distances.reserve(trace.size());
  std::uint64_t max_distance = 0;

  for (std::size_t now = 0; now < trace.size(); ++now) {
    const std::uint64_t line = trace[now];
    const auto it = last_access.find(line);
    if (it == last_access.end()) {
      ++profile.cold_accesses;
    } else {
      const std::size_t last = it->second;
      const auto between = static_cast<std::uint64_t>(
          last + 1 <= now - 1 ? marks.range_sum(last + 1, now - 1) : 0);
      const std::uint64_t d = between + 1;
      distances.push_back(d);
      max_distance = std::max(max_distance, d);
      marks.add(last, -1);
    }
    marks.add(now, +1);
    last_access[line] = now;
  }

  profile.histogram.assign(max_distance + 1, 0);
  for (const std::uint64_t d : distances) ++profile.histogram[d];
  return profile;
}

StackDistanceProfile compute_stack_distances_naive(const Trace& trace) {
  StackDistanceProfile profile;
  profile.total_accesses = trace.size();
  std::list<std::uint64_t> stack;  // Front = most recently used.
  std::vector<std::uint64_t> distances;
  std::uint64_t max_distance = 0;

  for (const std::uint64_t line : trace) {
    std::uint64_t depth = 0;
    auto found = stack.end();
    for (auto it = stack.begin(); it != stack.end(); ++it) {
      ++depth;
      if (*it == line) {
        found = it;
        break;
      }
    }
    if (found == stack.end()) {
      ++profile.cold_accesses;
    } else {
      distances.push_back(depth);
      max_distance = std::max(max_distance, depth);
      stack.erase(found);
    }
    stack.push_front(line);
  }

  profile.histogram.assign(max_distance + 1, 0);
  for (const std::uint64_t d : distances) ++profile.histogram[d];
  return profile;
}

}  // namespace aa::cachesim
