#include "cachesim/phased.hpp"

#include <stdexcept>

#include "aa/refine.hpp"

namespace aa::cachesim {

namespace {

core::Instance epoch_instance(const Machine& machine,
                              const std::vector<PhasedThread>& threads,
                              std::size_t epoch) {
  std::vector<ThreadProfile> profiles;
  profiles.reserve(threads.size());
  for (const PhasedThread& thread : threads) {
    profiles.push_back(thread.profile_at(epoch));
  }
  return build_instance(machine, profiles);
}

double measure_epoch(const std::vector<PhasedThread>& threads,
                     std::size_t epoch, const core::Assignment& assignment) {
  std::vector<ThreadProfile> profiles;
  profiles.reserve(threads.size());
  for (const PhasedThread& thread : threads) {
    profiles.push_back(thread.profile_at(epoch));
  }
  return measure_throughput(profiles, assignment);
}

}  // namespace

PhasedResult simulate_phased(const Machine& machine,
                             const std::vector<PhasedThread>& threads,
                             core::OnlinePolicy policy, std::size_t epochs,
                             double hysteresis) {
  for (const PhasedThread& thread : threads) {
    if (thread.phases.empty()) {
      throw std::invalid_argument("phased: thread with no phases");
    }
  }

  PhasedResult result;
  core::Assignment current;
  bool have_current = false;

  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    const core::Instance instance = epoch_instance(machine, threads, epoch);
    const core::SolveResult fresh =
        core::solve_algorithm2_refined(instance);
    result.oracle_ipc += measure_epoch(threads, epoch, fresh.assignment);

    if (!have_current) {
      current = fresh.assignment;
      have_current = true;
      result.achieved_ipc += measure_epoch(threads, epoch, current);
      continue;
    }

    switch (policy) {
      case core::OnlinePolicy::kStatic:
        break;  // Never adapt.
      case core::OnlinePolicy::kResolve:
        result.migrations += core::count_migrations(current, fresh.assignment);
        current = fresh.assignment;
        break;
      case core::OnlinePolicy::kSticky: {
        // Re-partition ways within sockets for free; migrate only when the
        // fresh solve wins by the hysteresis margin on the model utility.
        const core::Assignment retuned =
            core::reoptimize_allocations(instance, current);
        const double retained = core::total_utility(instance, retuned);
        if (fresh.utility > retained * (1.0 + hysteresis)) {
          result.migrations += core::count_migrations(current, fresh.assignment);
          current = fresh.assignment;
        } else {
          current = retuned;
        }
        break;
      }
    }
    result.achieved_ipc += measure_epoch(threads, epoch, current);
  }
  return result;
}

}  // namespace aa::cachesim
