#pragma once

// Phased co-run simulation: program phase behaviour meets online
// re-assignment (paper Sections I + VIII together).
//
// Real programs move through phases with different locality (loop nests,
// build/probe phases, scans); each phase has its own miss curve and hence
// its own utility. This module drives the multi-socket machine through a
// phase timeline: at every epoch each thread exposes its CURRENT phase's
// concave utility model, a policy decides whether to re-solve the AA
// problem, and achieved throughput is measured with the RAW miss curve of
// the active phase. Migrations (socket changes) are counted; re-partitioning
// ways within a socket is free, as in aa/online.hpp.

#include <cstddef>
#include <vector>

#include "aa/online.hpp"
#include "cachesim/machine.hpp"
#include "support/prng.hpp"

namespace aa::cachesim {

/// A thread with per-phase behaviour. `phase_of_epoch(e)` indexes into
/// `phases` via a round-robin schedule with the given phase length.
struct PhasedThread {
  std::vector<ThreadProfile> phases;
  std::size_t phase_length = 4;  ///< Epochs spent in each phase.
  std::size_t initial_phase = 0;

  [[nodiscard]] const ThreadProfile& profile_at(std::size_t epoch) const {
    const std::size_t step = epoch / std::max<std::size_t>(1, phase_length);
    return phases[(initial_phase + step) % phases.size()];
  }
};

struct PhasedResult {
  double achieved_ipc = 0.0;   ///< Sum over epochs of measured throughput.
  double oracle_ipc = 0.0;     ///< Same, re-solving every epoch.
  std::size_t migrations = 0;

  [[nodiscard]] double fraction() const noexcept {
    return oracle_ipc > 0.0 ? achieved_ipc / oracle_ipc : 1.0;
  }
};

/// Simulates `epochs` epochs of the phase timeline under the given policy
/// (kStatic / kSticky / kResolve semantics as in aa/online.hpp; hysteresis
/// applies to kSticky). All threads must have at least one phase whose
/// utility matches the machine's way count.
[[nodiscard]] PhasedResult simulate_phased(
    const Machine& machine, const std::vector<PhasedThread>& threads,
    core::OnlinePolicy policy, std::size_t epochs, double hysteresis = 0.05);

}  // namespace aa::cachesim
