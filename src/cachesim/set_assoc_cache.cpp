#include "cachesim/set_assoc_cache.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace aa::cachesim {

namespace {

constexpr std::uint64_t kEmpty = std::numeric_limits<std::uint64_t>::max();

bool is_power_of_two(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

}  // namespace

SetAssocCache::SetAssocCache(const SetAssocConfig& config,
                             std::uint64_t owned_ways)
    : config_(config), owned_ways_(owned_ways) {
  if (!is_power_of_two(config.num_sets)) {
    throw std::invalid_argument("set-assoc cache: num_sets must be 2^k");
  }
  if (config.num_ways == 0) {
    throw std::invalid_argument("set-assoc cache: need at least one way");
  }
  if (owned_ways > config.num_ways) {
    throw std::invalid_argument("set-assoc cache: owned ways exceed total");
  }
  tags_.assign(config.num_sets * owned_ways_, kEmpty);
  stamps_.assign(config.num_sets * owned_ways_, 0);
}

bool SetAssocCache::access(std::uint64_t line) {
  ++clock_;
  if (owned_ways_ == 0) {
    ++misses_;
    return false;
  }
  const std::uint64_t set = line & (config_.num_sets - 1);
  const std::uint64_t tag = line >> __builtin_ctzll(config_.num_sets);
  const std::size_t base = static_cast<std::size_t>(set * owned_ways_);

  std::size_t victim = base;
  std::uint64_t victim_stamp = kEmpty;
  for (std::size_t w = base; w < base + owned_ways_; ++w) {
    if (tags_[w] == tag) {
      stamps_[w] = clock_;
      ++hits_;
      return true;
    }
    // Track LRU victim: empty slots (stamp 0, tag kEmpty) win immediately.
    const std::uint64_t stamp = tags_[w] == kEmpty ? 0 : stamps_[w];
    if (stamp < victim_stamp) {
      victim_stamp = stamp;
      victim = w;
    }
  }
  tags_[victim] = tag;
  stamps_[victim] = clock_;
  ++misses_;
  return false;
}

std::uint64_t SetAssocCache::run(const Trace& trace) {
  const std::uint64_t before = misses_;
  for (const std::uint64_t line : trace) access(line);
  return misses_ - before;
}

void SetAssocCache::reset() {
  std::fill(tags_.begin(), tags_.end(), kEmpty);
  std::fill(stamps_.begin(), stamps_.end(), 0);
  clock_ = 0;
  hits_ = 0;
  misses_ = 0;
}

std::vector<std::uint64_t> measure_miss_curve(const Trace& trace,
                                              const SetAssocConfig& config) {
  std::vector<std::uint64_t> curve(config.num_ways + 1, 0);
  for (std::uint64_t ways = 0; ways <= config.num_ways; ++ways) {
    SetAssocCache cache(config, ways);
    curve[ways] = cache.run(trace);
  }
  return curve;
}

}  // namespace aa::cachesim
