#pragma once

// Mattson LRU stack-distance analysis (Mattson et al., 1970): one pass over
// a trace yields hit counts for EVERY fully-associative LRU cache size
// simultaneously. An access's stack distance is the number of distinct
// lines touched since the previous access to the same line, inclusive of
// the line itself; it hits in any LRU cache holding at least that many
// lines. Implemented with a Fenwick tree over access timestamps
// (O(N log N) time, O(N + footprint) space).

#include <cstdint>
#include <vector>

#include "cachesim/trace.hpp"

namespace aa::cachesim {

struct StackDistanceProfile {
  /// histogram[d] = number of accesses with stack distance d (d >= 1).
  /// Index 0 is unused (distance is at least 1 for a reuse).
  std::vector<std::uint64_t> histogram;

  /// First-touch accesses (infinite distance: compulsory misses).
  std::uint64_t cold_accesses = 0;

  /// Total accesses analyzed.
  std::uint64_t total_accesses = 0;

  /// Number of distinct lines in the trace (== cold_accesses).
  [[nodiscard]] std::uint64_t footprint() const noexcept {
    return cold_accesses;
  }

  /// Misses in a fully-associative LRU cache of `lines` lines:
  /// cold misses plus all reuses at distance > lines.
  [[nodiscard]] std::uint64_t misses_at(std::uint64_t lines) const noexcept;
};

/// Computes the stack-distance profile of a trace.
[[nodiscard]] StackDistanceProfile compute_stack_distances(const Trace& trace);

/// Reference O(N * footprint) implementation maintaining an explicit LRU
/// stack; test oracle for compute_stack_distances.
[[nodiscard]] StackDistanceProfile compute_stack_distances_naive(
    const Trace& trace);

}  // namespace aa::cachesim
