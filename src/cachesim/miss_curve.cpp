#include "cachesim/miss_curve.hpp"

#include <memory>
#include <stdexcept>

namespace aa::cachesim {

double MissCurve::miss_ratio(std::uint64_t ways) const {
  if (accesses == 0) return 0.0;
  const std::size_t idx =
      std::min<std::size_t>(ways, misses_by_ways.size() - 1);
  return static_cast<double>(misses_by_ways[idx]) /
         static_cast<double>(accesses);
}

double MissCurve::throughput(std::uint64_t ways, const PerfModel& model) const {
  if (accesses == 0) return 0.0;
  const std::size_t idx =
      std::min<std::size_t>(ways, misses_by_ways.size() - 1);
  const double a = static_cast<double>(accesses);
  const double cycles = a * model.hit_cost +
                        static_cast<double>(misses_by_ways[idx]) *
                            model.miss_penalty;
  return model.instructions_per_access * a / cycles;
}

MissCurve build_miss_curve(const StackDistanceProfile& profile,
                           const CacheGeometry& geometry) {
  if (geometry.total_ways == 0 || geometry.lines_per_way == 0) {
    throw std::invalid_argument("miss curve: degenerate cache geometry");
  }
  MissCurve curve;
  curve.accesses = profile.total_accesses;
  curve.misses_by_ways.resize(geometry.total_ways + 1);
  curve.misses_by_ways[0] = profile.total_accesses;  // No LLC share at all.
  for (std::uint64_t w = 1; w <= geometry.total_ways; ++w) {
    curve.misses_by_ways[w] = profile.misses_at(w * geometry.lines_per_way);
  }
  return curve;
}

util::UtilityPtr utility_from_miss_curve(const MissCurve& curve,
                                         const PerfModel& model) {
  std::vector<double> samples(curve.misses_by_ways.size());
  for (std::size_t w = 0; w < samples.size(); ++w) {
    samples[w] = curve.throughput(w, model);
  }
  return std::make_shared<util::TabulatedUtility>(
      util::TabulatedUtility::from_samples_with_repair(samples));
}

}  // namespace aa::cachesim
