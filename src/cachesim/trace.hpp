#pragma once

// Synthetic cache-line access trace generation.
//
// The paper's introduction motivates AA with multicore cache partitioning:
// each thread's utility is its throughput as a function of its share of the
// shared last-level cache, derived from a miss-rate curve. The authors
// measure such curves on real programs; we have no proprietary traces, so
// this module generates synthetic ones with controlled locality structure
// (see DESIGN.md's substitution table). A mixture of fixed-size "pools" of
// cache lines, each accessed with its own probability, produces miss-rate
// curves with knees at the pool sizes — the same qualitative shapes
// (streaming, cache-friendly, saturating) seen in the paper's citations
// [4, 10].

#include <cstdint>
#include <vector>

#include "support/prng.hpp"

namespace aa::cachesim {

/// A cache-line address trace (line granularity; no intra-line offsets).
using Trace = std::vector<std::uint64_t>;

/// One locality pool: `lines` distinct lines collectively drawing `weight`
/// of the accesses (weights are normalized across pools).
struct LocalityPool {
  std::uint64_t lines = 1;
  double weight = 1.0;
};

struct TraceConfig {
  std::vector<LocalityPool> pools;
  std::size_t length = 100000;  ///< Number of accesses.

  /// Convenience presets mirroring common workload archetypes.
  [[nodiscard]] static TraceConfig cache_friendly(std::uint64_t hot_lines,
                                                  std::size_t length);
  [[nodiscard]] static TraceConfig streaming(std::uint64_t footprint,
                                             std::size_t length);
  [[nodiscard]] static TraceConfig mixed(std::uint64_t hot_lines,
                                         std::uint64_t warm_lines,
                                         std::uint64_t cold_lines,
                                         std::size_t length);
};

/// Generates a trace: each access picks a pool by weight, then a line
/// uniformly within the pool. Pools occupy disjoint line-address ranges.
[[nodiscard]] Trace generate_trace(const TraceConfig& config,
                                   support::Rng& rng);

/// A pure streaming trace (every line touched once, in order): the
/// worst case for caching, useful as a degenerate test input.
[[nodiscard]] Trace sequential_trace(std::uint64_t lines);

/// Zipf-popularity trace: line i is accessed with probability proportional
/// to 1 / (i + 1)^exponent — the classic skewed-popularity model whose
/// miss curves decay smoothly instead of exhibiting pool-sized knees.
struct ZipfTraceConfig {
  std::uint64_t lines = 1024;
  double exponent = 1.0;  ///< > 0; larger = more concentrated.
  std::size_t length = 100000;
};

[[nodiscard]] Trace generate_zipf_trace(const ZipfTraceConfig& config,
                                        support::Rng& rng);

}  // namespace aa::cachesim
