#pragma once

// Baseline comparison for benchmark reports (aa_bench --compare).
//
// Joins two Reports on case name and classifies each case by the ratio of
// current to baseline median latency. The regression predicate is strictly
// greater than (1 + threshold): a case sitting exactly at the threshold
// passes, which tests/bench_json_test.cpp pins. Cases present on only one
// side are reported (kMissingInCurrent / kNewInCurrent) but only count as
// failures under `require_all`; a zero baseline median makes the ratio
// meaningless and is surfaced as kZeroBaseline (warn, never fail).

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "benchkit/report.hpp"

namespace aa::benchkit {

struct CompareOptions {
  /// Relative slowdown tolerated before a case counts as regressed:
  /// regression iff current/baseline > 1 + threshold.
  double threshold = 0.10;
  /// Improvement callout uses the mirrored bound (ratio < 1 - threshold).
  /// When true, baseline cases missing from the current report count as
  /// regressions (a renamed or dropped case stops being silently ignored).
  bool require_all = false;
};

enum class CaseStatus {
  kOk,                ///< Within threshold either way.
  kImproved,          ///< ratio < 1 - threshold.
  kRegressed,         ///< ratio > 1 + threshold.
  kMissingInCurrent,  ///< In baseline only.
  kNewInCurrent,      ///< In current only.
  kZeroBaseline,      ///< Baseline median is 0; ratio undefined.
};

[[nodiscard]] std::string_view case_status_name(CaseStatus status);

struct CaseDelta {
  std::string name;
  CaseStatus status = CaseStatus::kOk;
  double baseline_median_ms = 0.0;
  double current_median_ms = 0.0;
  /// current / baseline; 0 when undefined (missing side or zero baseline).
  double ratio = 0.0;
  /// True when both sides carry the same deterministic check value —
  /// comparing timings is only meaningful if the workloads matched.
  bool check_matches = true;
};

struct CompareResult {
  std::vector<CaseDelta> deltas;  ///< Baseline order, new cases appended.
  std::size_t regressions = 0;    ///< kRegressed (+ missing under require_all).
  std::size_t improvements = 0;
  std::size_t check_mismatches = 0;

  [[nodiscard]] bool ok() const noexcept {
    return regressions == 0 && check_mismatches == 0;
  }
};

[[nodiscard]] CompareResult compare_reports(const Report& baseline,
                                            const Report& current,
                                            const CompareOptions& options = {});

/// Human-readable per-case table plus a one-line verdict.
[[nodiscard]] std::string format_compare(const CompareResult& result,
                                         const CompareOptions& options = {});

}  // namespace aa::benchkit
