#pragma once

// Adaptive benchmark-case runner for tools/aa_bench.
//
// run_case() times a callable repeatedly until the mean converges (relative
// standard error below target), bounded by a rep ceiling and a wall-clock
// budget, then runs one extra *untimed* pass under an obs::Session to
// snapshot the deterministic solver counters — instrumentation overhead
// never contaminates the timed reps, and timed reps never pay for a live
// session. The callable returns a deterministic check value (e.g. the
// achieved solve utility) recorded on the CaseResult so baseline
// comparisons can verify both runs solved the same problem identically
// (compare.hpp).

#include <cstddef>
#include <functional>
#include <string>

#include "benchkit/report.hpp"

namespace aa::benchkit {

struct RunnerOptions {
  std::size_t min_reps = 5;    ///< Always measure at least this many.
  std::size_t max_reps = 100;  ///< Hard rep ceiling.
  /// Stop once stderr(mean)/mean drops below this (after min_reps).
  double target_rel_stderr = 0.02;
  /// Per-case wall-clock budget (timed reps only); stops early even if the
  /// target relative error was not reached.
  double max_case_seconds = 2.0;
  std::size_t warmup_reps = 1;  ///< Untimed warm-up passes.
};

/// Measures `body` per the options above. The returned CaseResult carries
/// the timing summary (median via support::quantile), the check value and
/// counter snapshot from the profiled pass, and rel_stderr actually
/// achieved.
[[nodiscard]] CaseResult run_case(std::string name, std::string group,
                                  const std::function<double()>& body,
                                  const RunnerOptions& options = {});

}  // namespace aa::benchkit
