#include "benchkit/compare.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

namespace aa::benchkit {

std::string_view case_status_name(CaseStatus status) {
  switch (status) {
    case CaseStatus::kOk: return "ok";
    case CaseStatus::kImproved: return "improved";
    case CaseStatus::kRegressed: return "REGRESSED";
    case CaseStatus::kMissingInCurrent: return "missing-in-current";
    case CaseStatus::kNewInCurrent: return "new-in-current";
    case CaseStatus::kZeroBaseline: return "zero-baseline";
  }
  return "unknown";
}

CompareResult compare_reports(const Report& baseline, const Report& current,
                              const CompareOptions& options) {
  std::unordered_map<std::string_view, const CaseResult*> current_by_name;
  current_by_name.reserve(current.cases.size());
  for (const CaseResult& result : current.cases) {
    current_by_name.emplace(result.name, &result);
  }

  CompareResult out;
  for (const CaseResult& base : baseline.cases) {
    CaseDelta delta;
    delta.name = base.name;
    delta.baseline_median_ms = base.median_ms;

    const auto it = current_by_name.find(base.name);
    if (it == current_by_name.end()) {
      delta.status = CaseStatus::kMissingInCurrent;
      if (options.require_all) ++out.regressions;
      out.deltas.push_back(std::move(delta));
      continue;
    }
    const CaseResult& cur = *it->second;
    delta.current_median_ms = cur.median_ms;
    // %.17g round-trips doubles exactly through the JSON layer, so equal
    // seeds must reproduce the check bit for bit.
    delta.check_matches = !(base.check < cur.check) && !(cur.check < base.check);
    if (!delta.check_matches) ++out.check_mismatches;

    if (base.median_ms <= 0.0) {
      delta.status = CaseStatus::kZeroBaseline;
    } else {
      delta.ratio = cur.median_ms / base.median_ms;
      if (delta.ratio > 1.0 + options.threshold) {
        delta.status = CaseStatus::kRegressed;
        ++out.regressions;
      } else if (delta.ratio < 1.0 - options.threshold) {
        delta.status = CaseStatus::kImproved;
        ++out.improvements;
      } else {
        delta.status = CaseStatus::kOk;
      }
    }
    out.deltas.push_back(std::move(delta));
  }

  for (const CaseResult& cur : current.cases) {
    const bool in_baseline =
        std::any_of(baseline.cases.begin(), baseline.cases.end(),
                    [&](const CaseResult& base) { return base.name == cur.name; });
    if (in_baseline) continue;
    CaseDelta delta;
    delta.name = cur.name;
    delta.status = CaseStatus::kNewInCurrent;
    delta.current_median_ms = cur.median_ms;
    out.deltas.push_back(std::move(delta));
  }
  return out;
}

std::string format_compare(const CompareResult& result,
                           const CompareOptions& options) {
  std::size_t name_width = 4;
  for (const CaseDelta& delta : result.deltas) {
    name_width = std::max(name_width, delta.name.size());
  }

  std::string out;
  char line[512];
  std::snprintf(line, sizeof line, "%-*s %12s %12s %8s  %s\n",
                static_cast<int>(name_width), "case", "base ms", "cur ms",
                "ratio", "status");
  out += line;
  for (const CaseDelta& delta : result.deltas) {
    char ratio[32] = "-";
    if (delta.ratio > 0.0) {
      std::snprintf(ratio, sizeof ratio, "%.3f", delta.ratio);
    }
    std::snprintf(line, sizeof line, "%-*s %12.4f %12.4f %8s  %s%s\n",
                  static_cast<int>(name_width), delta.name.c_str(),
                  delta.baseline_median_ms, delta.current_median_ms, ratio,
                  case_status_name(delta.status).data(),
                  delta.check_matches ? "" : " [check mismatch]");
    out += line;
  }
  std::snprintf(line, sizeof line,
                "threshold %.0f%%: %zu regressed, %zu improved, %zu check "
                "mismatches -> %s\n",
                options.threshold * 100.0, result.regressions,
                result.improvements, result.check_mismatches,
                result.ok() ? "OK" : "FAIL");
  out += line;
  return out;
}

}  // namespace aa::benchkit
