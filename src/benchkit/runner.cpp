#include "benchkit/runner.hpp"

#include <chrono>
#include <utility>
#include <vector>

#include "obs/session.hpp"
#include "support/stats.hpp"

namespace aa::benchkit {

CaseResult run_case(std::string name, std::string group,
                    const std::function<double()>& body,
                    const RunnerOptions& options) {
  using Clock = std::chrono::steady_clock;

  for (std::size_t i = 0; i < options.warmup_reps; ++i) {
    static_cast<void>(body());
  }

  support::RunningStats stats;
  std::vector<double> samples;
  samples.reserve(options.max_reps);
  const Clock::time_point budget_start = Clock::now();
  while (samples.size() < options.max_reps) {
    const Clock::time_point start = Clock::now();
    static_cast<void>(body());
    const Clock::time_point stop = Clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    samples.push_back(ms);
    stats.add(ms);
    if (samples.size() < options.min_reps) continue;
    if (stats.mean() > 0.0 &&
        stats.stderr_mean() / stats.mean() <= options.target_rel_stderr) {
      break;
    }
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - budget_start).count();
    if (elapsed > options.max_case_seconds) break;
  }

  CaseResult result;
  result.name = std::move(name);
  result.group = std::move(group);
  result.repetitions = samples.size();
  result.median_ms = support::quantile(samples, 0.5);
  result.mean_ms = stats.mean();
  result.stddev_ms = stats.stddev();
  result.min_ms = stats.min();
  result.max_ms = stats.max();
  result.rel_stderr =
      stats.mean() > 0.0 ? stats.stderr_mean() / stats.mean() : 0.0;

  // Profiled pass: untimed, under a session, so counters reflect exactly
  // one run and the timed samples above stayed instrumentation-free.
  {
    obs::Session session;
    result.check = body();
    result.counters = session.metrics().counters_json();
  }
  return result;
}

}  // namespace aa::benchkit
