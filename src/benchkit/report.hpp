#pragma once

// Benchmark report model for tools/aa_bench (see docs/BENCHMARKS.md).
//
// A Report is the in-memory form of one BENCH_<host>_<date>.json document:
// run provenance (host, UTC date, git SHA, compiler, build type, suite,
// seed) plus one CaseResult per benchmark case. The JSON mapping is
// schema-versioned so future field changes can stay readable; loaders
// reject documents whose schema_version they do not understand instead of
// misinterpreting them. validate_report_json() is the single gatekeeper —
// report_from_json() calls it first, and tests/bench_json_test.cpp pins
// its error messages for malformed documents.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "support/json.hpp"

namespace aa::benchkit {

/// Bump when the JSON layout changes incompatibly; readers reject other
/// versions outright (docs/BENCHMARKS.md documents the refresh policy).
inline constexpr std::int64_t kSchemaVersion = 1;

/// One benchmark case: timing summary over `repetitions` measured runs plus
/// a deterministic workload fingerprint.
struct CaseResult {
  std::string name;   ///< Unique key, e.g. "alg1/solve/n512_m8_c1000".
  std::string group;  ///< Suite grouping, e.g. "alg1" or "warm_start".
  std::size_t repetitions = 0;
  double median_ms = 0.0;
  double mean_ms = 0.0;
  double stddev_ms = 0.0;
  double min_ms = 0.0;
  double max_ms = 0.0;
  /// Standard error of the mean divided by the mean (0 when mean is 0) —
  /// how well-converged the measurement was.
  double rel_stderr = 0.0;
  /// Workload-dependent correctness anchor (e.g. achieved solve utility).
  /// Deterministic for a fixed seed, so comparing reports can assert the
  /// two runs solved identical problems identically.
  double check = 0.0;
  /// Deterministic obs counter snapshot from one extra profiled run
  /// (counters only — timers and histograms are wall-clock dependent).
  support::JsonValue counters = support::JsonValue(support::JsonValue::Object{});
};

/// One full benchmark run.
struct Report {
  std::int64_t schema_version = kSchemaVersion;
  std::string host;
  std::string date_utc;  ///< YYYY-MM-DD.
  std::string git_sha;
  std::string compiler;
  std::string build_type;
  std::string suite;  ///< "quick" or "full".
  std::uint64_t seed = 0;
  std::vector<CaseResult> cases;
};

/// Serializes in a fixed member order (stable diffs for committed files).
[[nodiscard]] support::JsonValue report_to_json(const Report& report);

/// Validates then decodes; throws std::runtime_error with the
/// validate_report_json() message on invalid input.
[[nodiscard]] Report report_from_json(const support::JsonValue& json);

/// Structural validation: returns "" when `json` is a well-formed report,
/// else a one-line description of the first problem found.
[[nodiscard]] std::string validate_report_json(const support::JsonValue& json);

}  // namespace aa::benchkit
