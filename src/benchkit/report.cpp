#include "benchkit/report.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace aa::benchkit {

namespace {

support::JsonValue case_to_json(const CaseResult& result) {
  support::JsonValue::Object object;
  support::JsonValue json(std::move(object));
  json.set("name", result.name);
  json.set("group", result.group);
  json.set("repetitions", result.repetitions);
  json.set("median_ms", result.median_ms);
  json.set("mean_ms", result.mean_ms);
  json.set("stddev_ms", result.stddev_ms);
  json.set("min_ms", result.min_ms);
  json.set("max_ms", result.max_ms);
  json.set("rel_stderr", result.rel_stderr);
  json.set("check", result.check);
  json.set("counters", result.counters);
  return json;
}

/// "" on success, else the problem prefixed with the case's position.
std::string validate_case(const support::JsonValue& json, std::size_t index) {
  const std::string where = "cases[" + std::to_string(index) + "]";
  if (!json.is_object()) return where + ": not an object";

  const char* string_fields[] = {"name", "group"};
  for (const char* field : string_fields) {
    const support::JsonValue* value = json.find(field);
    if (value == nullptr) return where + ": missing field '" + field + "'";
    if (!value->is_string()) return where + ": field '" + field + "' is not a string";
    if (value->as_string().empty()) return where + ": field '" + field + "' is empty";
  }

  const char* number_fields[] = {"repetitions", "median_ms", "mean_ms",
                                 "stddev_ms",   "min_ms",    "max_ms",
                                 "rel_stderr",  "check"};
  for (const char* field : number_fields) {
    const support::JsonValue* value = json.find(field);
    if (value == nullptr) return where + ": missing field '" + field + "'";
    if (!value->is_number()) return where + ": field '" + field + "' is not a number";
    if (!std::isfinite(value->as_number())) {
      return where + ": field '" + field + "' is not finite";
    }
  }
  if (json.at("repetitions").as_number() < 1.0) {
    return where + ": field 'repetitions' must be >= 1";
  }
  if (json.at("median_ms").as_number() < 0.0) {
    return where + ": field 'median_ms' must be >= 0";
  }

  const support::JsonValue* counters = json.find("counters");
  if (counters == nullptr) return where + ": missing field 'counters'";
  if (!counters->is_object()) return where + ": field 'counters' is not an object";
  for (const auto& [name, value] : counters->as_object()) {
    if (!value.is_number()) {
      return where + ": counter '" + name + "' is not a number";
    }
  }
  return "";
}

CaseResult case_from_json(const support::JsonValue& json) {
  CaseResult result;
  result.name = json.at("name").as_string();
  result.group = json.at("group").as_string();
  result.repetitions = static_cast<std::size_t>(json.at("repetitions").as_int());
  result.median_ms = json.at("median_ms").as_number();
  result.mean_ms = json.at("mean_ms").as_number();
  result.stddev_ms = json.at("stddev_ms").as_number();
  result.min_ms = json.at("min_ms").as_number();
  result.max_ms = json.at("max_ms").as_number();
  result.rel_stderr = json.at("rel_stderr").as_number();
  result.check = json.at("check").as_number();
  result.counters = json.at("counters");
  return result;
}

}  // namespace

support::JsonValue report_to_json(const Report& report) {
  support::JsonValue json{support::JsonValue::Object{}};
  json.set("schema_version", report.schema_version);
  json.set("host", report.host);
  json.set("date_utc", report.date_utc);
  json.set("git_sha", report.git_sha);
  json.set("compiler", report.compiler);
  json.set("build_type", report.build_type);
  json.set("suite", report.suite);
  json.set("seed", static_cast<std::int64_t>(report.seed));
  support::JsonValue::Array cases;
  cases.reserve(report.cases.size());
  for (const CaseResult& result : report.cases) {
    cases.push_back(case_to_json(result));
  }
  json.set("cases", support::JsonValue(std::move(cases)));
  return json;
}

std::string validate_report_json(const support::JsonValue& json) {
  if (!json.is_object()) return "report: not an object";

  const support::JsonValue* version = json.find("schema_version");
  if (version == nullptr) return "report: missing field 'schema_version'";
  if (!version->is_number()) return "report: field 'schema_version' is not a number";
  if (version->as_int() != kSchemaVersion) {
    return "report: unsupported schema_version " +
           std::to_string(version->as_int()) + " (expected " +
           std::to_string(kSchemaVersion) + ")";
  }

  const char* string_fields[] = {"host",     "date_utc", "git_sha",
                                 "compiler", "build_type", "suite"};
  for (const char* field : string_fields) {
    const support::JsonValue* value = json.find(field);
    if (value == nullptr) return std::string("report: missing field '") + field + "'";
    if (!value->is_string()) {
      return std::string("report: field '") + field + "' is not a string";
    }
  }

  const support::JsonValue* seed = json.find("seed");
  if (seed == nullptr) return "report: missing field 'seed'";
  if (!seed->is_number()) return "report: field 'seed' is not a number";

  const support::JsonValue* cases = json.find("cases");
  if (cases == nullptr) return "report: missing field 'cases'";
  if (!cases->is_array()) return "report: field 'cases' is not an array";
  for (std::size_t i = 0; i < cases->as_array().size(); ++i) {
    std::string problem = validate_case(cases->as_array()[i], i);
    if (!problem.empty()) return problem;
  }
  // Case names are the comparator's join key; duplicates would silently
  // shadow each other.
  for (std::size_t i = 0; i < cases->as_array().size(); ++i) {
    const std::string& name = cases->as_array()[i].at("name").as_string();
    for (std::size_t j = i + 1; j < cases->as_array().size(); ++j) {
      if (cases->as_array()[j].at("name").as_string() == name) {
        return "cases[" + std::to_string(j) + "]: duplicate case name '" +
               name + "'";
      }
    }
  }
  return "";
}

Report report_from_json(const support::JsonValue& json) {
  const std::string problem = validate_report_json(json);
  if (!problem.empty()) {
    throw std::runtime_error("invalid benchmark report: " + problem);
  }
  Report report;
  report.schema_version = json.at("schema_version").as_int();
  report.host = json.at("host").as_string();
  report.date_utc = json.at("date_utc").as_string();
  report.git_sha = json.at("git_sha").as_string();
  report.compiler = json.at("compiler").as_string();
  report.build_type = json.at("build_type").as_string();
  report.suite = json.at("suite").as_string();
  report.seed = static_cast<std::uint64_t>(json.at("seed").as_int());
  for (const support::JsonValue& case_json : json.at("cases").as_array()) {
    report.cases.push_back(case_from_json(case_json));
  }
  return report;
}

}  // namespace aa::benchkit
