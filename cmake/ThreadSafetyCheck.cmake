# Negative-compile checks for the thread-safety annotations in
# src/support/sync.hpp: each tests/ts_fixtures/fail_*.cpp contains one
# locking mistake (unguarded access, missing AA_REQUIRES at a call site,
# double acquire) that Clang -Werror=thread-safety must reject, registered
# as a ctest with WILL_FAIL so a silently-accepted fixture fails the
# suite. pass_annotated.cpp is the positive control: it proves the
# harness flags mistakes rather than everything. Mirrors the spirit of
# cmake/HeaderSelfCheck.cmake — the analysis is only trustworthy if its
# failure mode is exercised. Clang-only: GCC expands the annotation
# macros to nothing, so there the fixtures are skipped entirely.

option(AA_THREAD_SAFETY_FIXTURES
  "Register negative-compile ctests for the sync.hpp annotations (Clang)"
  ON)

if(NOT AA_THREAD_SAFETY_FIXTURES)
  return()
endif()
if(NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
  return()
endif()

file(GLOB AA_TS_FIXTURES CONFIGURE_DEPENDS
  ${CMAKE_SOURCE_DIR}/tests/ts_fixtures/*.cpp)

foreach(fixture ${AA_TS_FIXTURES})
  get_filename_component(stem ${fixture} NAME_WE)
  add_test(NAME ThreadSafetyFixture.${stem}
    COMMAND ${CMAKE_CXX_COMPILER}
      -std=c++${CMAKE_CXX_STANDARD} -fsyntax-only
      -Wthread-safety -Werror=thread-safety
      -I ${CMAKE_SOURCE_DIR}/src
      ${fixture})
  if(stem MATCHES "^fail_")
    set_tests_properties(ThreadSafetyFixture.${stem} PROPERTIES
      WILL_FAIL TRUE)
  endif()
endforeach()
